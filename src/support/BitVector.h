//===- support/BitVector.h - Dense dynamic bit vector ----------*- C++ -*-===//
///
/// \file
/// A dense, dynamically sized bit vector used by the dataflow solvers.
///
/// The interface intentionally mirrors the subset of llvm::BitVector that the
/// optimizer needs: set/reset/test, whole-vector boolean algebra, population
/// count, and iteration over set bits.
///
//===----------------------------------------------------------------------===//

#ifndef EPRE_SUPPORT_BITVECTOR_H
#define EPRE_SUPPORT_BITVECTOR_H

#include <cassert>
#include <cstdint>
#include <deque>
#include <vector>

namespace epre {

/// A fixed-universe bit set with word-parallel boolean operations.
class BitVector {
public:
  BitVector() = default;

  /// Creates a vector of \p NumBits bits, all initialized to \p Value.
  explicit BitVector(unsigned NumBits, bool Value = false) {
    resize(NumBits, Value);
  }

  /// Returns the number of bits in the universe.
  unsigned size() const { return NumBits; }

  /// Grows or shrinks the universe; new bits are initialized to \p Value.
  void resize(unsigned NewNumBits, bool Value = false) {
    unsigned OldNumBits = NumBits;
    NumBits = NewNumBits;
    Words.resize(numWords(NewNumBits), Value ? ~uint64_t(0) : 0);
    if (Value && OldNumBits < NewNumBits && OldNumBits % 64 != 0) {
      // Set the tail bits of the old final word that just became live.
      Words[OldNumBits / 64] |= ~uint64_t(0) << (OldNumBits % 64);
    }
    clearUnusedBits();
  }

  void set(unsigned Bit) {
    assert(Bit < NumBits && "bit index out of range");
    Words[Bit / 64] |= uint64_t(1) << (Bit % 64);
  }

  void reset(unsigned Bit) {
    assert(Bit < NumBits && "bit index out of range");
    Words[Bit / 64] &= ~(uint64_t(1) << (Bit % 64));
  }

  void setAll() {
    for (uint64_t &W : Words)
      W = ~uint64_t(0);
    clearUnusedBits();
  }

  void resetAll() {
    for (uint64_t &W : Words)
      W = 0;
  }

  bool test(unsigned Bit) const {
    assert(Bit < NumBits && "bit index out of range");
    return (Words[Bit / 64] >> (Bit % 64)) & 1;
  }

  bool operator[](unsigned Bit) const { return test(Bit); }

  /// Returns true if no bit is set.
  bool none() const {
    for (uint64_t W : Words)
      if (W)
        return false;
    return true;
  }

  bool any() const { return !none(); }

  /// Returns the number of set bits.
  unsigned count() const {
    unsigned N = 0;
    for (uint64_t W : Words)
      N += __builtin_popcountll(W);
    return N;
  }

  /// Returns the index of the first set bit, or -1 if none.
  int findFirst() const {
    for (unsigned I = 0, E = Words.size(); I != E; ++I)
      if (Words[I])
        return int(I * 64 + __builtin_ctzll(Words[I]));
    return -1;
  }

  /// Returns the index of the first set bit after \p Prev, or -1 if none.
  int findNext(unsigned Prev) const {
    unsigned Bit = Prev + 1;
    if (Bit >= NumBits)
      return -1;
    unsigned WordIdx = Bit / 64;
    uint64_t W = Words[WordIdx] & (~uint64_t(0) << (Bit % 64));
    while (true) {
      if (W)
        return int(WordIdx * 64 + __builtin_ctzll(W));
      if (++WordIdx == Words.size())
        return -1;
      W = Words[WordIdx];
    }
  }

  BitVector &operator|=(const BitVector &RHS) {
    assert(NumBits == RHS.NumBits && "universe mismatch");
    for (unsigned I = 0, E = Words.size(); I != E; ++I)
      Words[I] |= RHS.Words[I];
    return *this;
  }

  // --- Allocation-free kernels with change detection ------------------------
  //
  // The dataflow solvers' inner loop: each kernel mutates in place, touches
  // every word exactly once, and reports whether any bit actually changed so
  // a worklist solver can re-enqueue only the neighbours it has to.

  /// *this |= RHS; returns true if any bit of *this changed.
  bool unionWith(const BitVector &RHS) {
    assert(NumBits == RHS.NumBits && "universe mismatch");
    uint64_t Delta = 0;
    for (unsigned I = 0, E = unsigned(Words.size()); I != E; ++I) {
      uint64_t Old = Words[I];
      Words[I] |= RHS.Words[I];
      Delta |= Old ^ Words[I];
    }
    return Delta != 0;
  }

  /// *this &= RHS; returns true if any bit of *this changed.
  bool intersectWith(const BitVector &RHS) {
    assert(NumBits == RHS.NumBits && "universe mismatch");
    uint64_t Delta = 0;
    for (unsigned I = 0, E = unsigned(Words.size()); I != E; ++I) {
      uint64_t Old = Words[I];
      Words[I] &= RHS.Words[I];
      Delta |= Old ^ Words[I];
    }
    return Delta != 0;
  }

  /// *this &= ~RHS (set difference); returns true if any bit changed.
  bool intersectWithComplement(const BitVector &RHS) {
    assert(NumBits == RHS.NumBits && "universe mismatch");
    uint64_t Delta = 0;
    for (unsigned I = 0, E = unsigned(Words.size()); I != E; ++I) {
      uint64_t Old = Words[I];
      Words[I] &= ~RHS.Words[I];
      Delta |= Old ^ Words[I];
    }
    return Delta != 0;
  }

  /// *this = RHS; returns true if any bit changed. Universes must already
  /// match, so this never allocates.
  bool assignFrom(const BitVector &RHS) {
    assert(NumBits == RHS.NumBits && "universe mismatch");
    uint64_t Delta = 0;
    for (unsigned I = 0, E = unsigned(Words.size()); I != E; ++I) {
      Delta |= Words[I] ^ RHS.Words[I];
      Words[I] = RHS.Words[I];
    }
    return Delta != 0;
  }

  /// *this = (M & P) | G in a single word pass; returns true if any bit of
  /// *this changed. The fused Gen/Preserve transfer of forward/backward
  /// bit-vector dataflow (P = transparency mask).
  bool assignMeetPreserveGen(const BitVector &M, const BitVector &P,
                             const BitVector &G) {
    assert(NumBits == M.NumBits && NumBits == P.NumBits &&
           NumBits == G.NumBits && "universe mismatch");
    uint64_t Delta = 0;
    for (unsigned I = 0, E = unsigned(Words.size()); I != E; ++I) {
      uint64_t New = (M.Words[I] & P.Words[I]) | G.Words[I];
      Delta |= Words[I] ^ New;
      Words[I] = New;
    }
    return Delta != 0;
  }

  /// *this = (M & ~K) | G in a single word pass; returns true if any bit of
  /// *this changed. The fused Gen/Kill transfer (K = kill mask).
  bool assignMeetKillGen(const BitVector &M, const BitVector &K,
                         const BitVector &G) {
    assert(NumBits == M.NumBits && NumBits == K.NumBits &&
           NumBits == G.NumBits && "universe mismatch");
    uint64_t Delta = 0;
    for (unsigned I = 0, E = unsigned(Words.size()); I != E; ++I) {
      uint64_t New = (M.Words[I] & ~K.Words[I]) | G.Words[I];
      Delta |= Words[I] ^ New;
      Words[I] = New;
    }
    return Delta != 0;
  }

  /// Number of 64-bit words backing the vector (for solver statistics).
  unsigned numWords() const { return unsigned(Words.size()); }

  BitVector &operator&=(const BitVector &RHS) {
    assert(NumBits == RHS.NumBits && "universe mismatch");
    for (unsigned I = 0, E = Words.size(); I != E; ++I)
      Words[I] &= RHS.Words[I];
    return *this;
  }

  /// Removes from this vector every bit set in \p RHS (set difference).
  BitVector &andNot(const BitVector &RHS) {
    assert(NumBits == RHS.NumBits && "universe mismatch");
    for (unsigned I = 0, E = Words.size(); I != E; ++I)
      Words[I] &= ~RHS.Words[I];
    return *this;
  }

  /// Flips every bit in the universe.
  void flip() {
    for (uint64_t &W : Words)
      W = ~W;
    clearUnusedBits();
  }

  bool operator==(const BitVector &RHS) const {
    return NumBits == RHS.NumBits && Words == RHS.Words;
  }

  bool operator!=(const BitVector &RHS) const { return !(*this == RHS); }

private:
  static unsigned numWords(unsigned Bits) { return (Bits + 63) / 64; }

  /// Keeps bits beyond NumBits zero so count()/equality stay exact.
  void clearUnusedBits() {
    if (NumBits % 64 != 0 && !Words.empty())
      Words.back() &= ~uint64_t(0) >> (64 - NumBits % 64);
  }

  unsigned NumBits = 0;
  std::vector<uint64_t> Words;
};

/// Reusable scratch-buffer protocol for fixpoint loops: a small pool of
/// same-universe temporaries addressed by slot index. Each slot allocates
/// once, on first use; after that every borrow is a constant-time reset (or
/// no reset at all for \c raw), so steady-state solves never touch the heap.
class BitVectorScratch {
public:
  BitVectorScratch() = default;
  explicit BitVectorScratch(unsigned NumBits) { setUniverse(NumBits); }

  /// Sets the universe all slots are sized to. Existing slots are resized
  /// lazily on their next borrow.
  void setUniverse(unsigned NumBits) { Bits = NumBits; }

  unsigned universe() const { return Bits; }

  /// Borrows slot \p Slot with unspecified contents; the caller overwrites
  /// it (e.g. via assignFrom). Cheapest borrow: no clearing pass.
  /// References stay valid while other slots are borrowed (deque storage).
  BitVector &raw(unsigned Slot) {
    if (Slot >= Slots.size())
      Slots.resize(Slot + 1);
    if (Slots[Slot].size() != Bits)
      Slots[Slot].resize(Bits);
    return Slots[Slot];
  }

  /// Borrows slot \p Slot cleared to all-zero.
  BitVector &zeroed(unsigned Slot) {
    BitVector &V = raw(Slot);
    V.resetAll();
    return V;
  }

  /// Borrows slot \p Slot set to all-ones.
  BitVector &ones(unsigned Slot) {
    BitVector &V = raw(Slot);
    V.setAll();
    return V;
  }

private:
  unsigned Bits = 0;
  std::deque<BitVector> Slots;
};

} // namespace epre

#endif // EPRE_SUPPORT_BITVECTOR_H
