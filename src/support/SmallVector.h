//===- support/SmallVector.h - Vector with inline storage -------*- C++ -*-===//
///
/// \file
/// A std::vector-like container that stores its first N elements inline,
/// avoiding any heap allocation in the overwhelmingly common small case
/// (instruction operand lists and successor lists hold <= 2 elements).
/// Modeled on the LLVM idiom: a size-erased SmallVectorImpl<T> base that
/// passes can take by reference, and a SmallVector<T, N> that supplies the
/// inline buffer.
///
//===----------------------------------------------------------------------===//

#ifndef EPRE_SUPPORT_SMALLVECTOR_H
#define EPRE_SUPPORT_SMALLVECTOR_H

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <iterator>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace epre {

/// Size-erased interface: all operations that don't need to know the inline
/// capacity live here. Holds a pointer to the current storage (inline buffer
/// or heap block), the element count, and the capacity.
template <typename T> class SmallVectorImpl {
public:
  using value_type = T;
  using iterator = T *;
  using const_iterator = const T *;
  using size_type = size_t;
  using reference = T &;
  using const_reference = const T &;

  SmallVectorImpl(const SmallVectorImpl &) = delete;

  iterator begin() { return Data; }
  const_iterator begin() const { return Data; }
  iterator end() { return Data + Count; }
  const_iterator end() const { return Data + Count; }

  auto rbegin() { return std::reverse_iterator<iterator>(end()); }
  auto rend() { return std::reverse_iterator<iterator>(begin()); }

  size_type size() const { return Count; }
  size_type capacity() const { return Cap; }
  bool empty() const { return Count == 0; }

  T *data() { return Data; }
  const T *data() const { return Data; }

  reference operator[](size_type I) {
    assert(I < Count && "index out of range");
    return Data[I];
  }
  const_reference operator[](size_type I) const {
    assert(I < Count && "index out of range");
    return Data[I];
  }

  reference front() {
    assert(Count && "front() on empty vector");
    return Data[0];
  }
  const_reference front() const {
    assert(Count && "front() on empty vector");
    return Data[0];
  }
  reference back() {
    assert(Count && "back() on empty vector");
    return Data[Count - 1];
  }
  const_reference back() const {
    assert(Count && "back() on empty vector");
    return Data[Count - 1];
  }

  void push_back(const T &V) {
    if (Count == Cap) {
      T Tmp(V); // V may alias an element that moves during growth
      grow(Cap + 1);
      ::new (static_cast<void *>(Data + Count)) T(std::move(Tmp));
      ++Count;
    } else {
      ::new (static_cast<void *>(Data + Count)) T(V);
      ++Count;
    }
  }
  void push_back(T &&V) {
    if (Count == Cap) {
      T Tmp(std::move(V));
      grow(Cap + 1);
      ::new (static_cast<void *>(Data + Count)) T(std::move(Tmp));
      ++Count;
    } else {
      ::new (static_cast<void *>(Data + Count)) T(std::move(V));
      ++Count;
    }
  }

  template <typename... Args> reference emplace_back(Args &&...A) {
    if (Count == Cap) {
      T Tmp(std::forward<Args>(A)...);
      grow(Cap + 1);
      ::new (static_cast<void *>(Data + Count)) T(std::move(Tmp));
    } else {
      ::new (static_cast<void *>(Data + Count)) T(std::forward<Args>(A)...);
    }
    return Data[Count++];
  }

  void pop_back() {
    assert(Count && "pop_back() on empty vector");
    --Count;
    Data[Count].~T();
  }

  void clear() {
    destroyRange(Data, Data + Count);
    Count = 0;
  }

  void reserve(size_type N) {
    if (N > Cap)
      grow(N);
  }

  void resize(size_type N) {
    if (N < Count) {
      destroyRange(Data + N, Data + Count);
      Count = N;
    } else if (N > Count) {
      reserve(N);
      for (; Count < N; ++Count)
        ::new (static_cast<void *>(Data + Count)) T();
    }
  }

  void resize(size_type N, const T &V) {
    if (N < Count) {
      destroyRange(Data + N, Data + Count);
      Count = N;
      return;
    }
    if (N > Cap) {
      T Tmp(V); // V may alias an element that moves during growth
      grow(N);
      for (; Count < N; ++Count)
        ::new (static_cast<void *>(Data + Count)) T(Tmp);
      return;
    }
    for (; Count < N; ++Count)
      ::new (static_cast<void *>(Data + Count)) T(V);
  }

  iterator erase(const_iterator CI) {
    iterator I = const_cast<iterator>(CI);
    assert(I >= begin() && I < end() && "erase out of range");
    std::move(I + 1, end(), I);
    pop_back();
    return I;
  }

  iterator erase(const_iterator CFirst, const_iterator CLast) {
    iterator First = const_cast<iterator>(CFirst);
    iterator Last = const_cast<iterator>(CLast);
    assert(First >= begin() && Last <= end() && First <= Last &&
           "erase range out of range");
    iterator NewEnd = std::move(Last, end(), First);
    destroyRange(NewEnd, end());
    Count = static_cast<size_type>(NewEnd - begin());
    return First;
  }

  iterator insert(const_iterator CPos, const T &V) {
    size_type Idx = static_cast<size_type>(CPos - begin());
    assert(Idx <= Count && "insert out of range");
    if (Idx == Count) {
      push_back(V);
      return begin() + Idx;
    }
    T Tmp(V); // V may alias an element that moves during growth
    if (Count == Cap)
      grow(Cap + 1);
    ::new (static_cast<void *>(Data + Count)) T(std::move(Data[Count - 1]));
    std::move_backward(Data + Idx, Data + Count - 1, Data + Count);
    Data[Idx] = std::move(Tmp);
    ++Count;
    return begin() + Idx;
  }

  template <typename InputIt> void assign(InputIt First, InputIt Last) {
    clear();
    append(First, Last);
  }

  void assign(std::initializer_list<T> IL) { assign(IL.begin(), IL.end()); }

  template <typename InputIt> void append(InputIt First, InputIt Last) {
    size_type N = static_cast<size_type>(std::distance(First, Last));
    reserve(Count + N);
    for (; First != Last; ++First) {
      ::new (static_cast<void *>(Data + Count)) T(*First);
      ++Count;
    }
  }

  SmallVectorImpl &operator=(const SmallVectorImpl &RHS) {
    if (this != &RHS)
      assign(RHS.begin(), RHS.end());
    return *this;
  }

  SmallVectorImpl &operator=(SmallVectorImpl &&RHS) {
    if (this == &RHS)
      return *this;
    if (!RHS.isSmall()) {
      // Steal the heap block; free ours if we had one.
      destroyRange(Data, Data + Count);
      if (!isSmall())
        free(Data);
      Data = RHS.Data;
      Count = RHS.Count;
      Cap = RHS.Cap;
      RHS.Data = RHS.inlineBuffer();
      RHS.Count = 0;
      RHS.Cap = RHS.InlineCap;
    } else {
      // RHS is inline: move element-wise.
      clear();
      reserve(RHS.Count);
      for (size_type I = 0; I != RHS.Count; ++I)
        ::new (static_cast<void *>(Data + I)) T(std::move(RHS.Data[I]));
      Count = RHS.Count;
      RHS.clear();
    }
    return *this;
  }

  SmallVectorImpl &operator=(std::initializer_list<T> IL) {
    assign(IL);
    return *this;
  }

  bool operator==(const SmallVectorImpl &RHS) const {
    return Count == RHS.Count && std::equal(begin(), end(), RHS.begin());
  }
  bool operator!=(const SmallVectorImpl &RHS) const { return !(*this == RHS); }
  bool operator<(const SmallVectorImpl &RHS) const {
    return std::lexicographical_compare(begin(), end(), RHS.begin(),
                                        RHS.end());
  }

protected:
  SmallVectorImpl(T *InlineBuf, size_type InlineN)
      : Data(InlineBuf), Cap(InlineN), InlineCap(InlineN) {}

  ~SmallVectorImpl() {
    destroyRange(Data, Data + Count);
    if (!isSmall())
      free(Data);
  }

  bool isSmall() const { return Data == inlineBuffer(); }

  /// The inline buffer sits immediately after this header in SmallVector's
  /// layout; recover it from the stored inline capacity offset.
  T *inlineBuffer() const {
    return const_cast<T *>(reinterpret_cast<const T *>(
        reinterpret_cast<const char *>(this) + InlineBufOffset));
  }

  void grow(size_type MinCap) {
    size_type NewCap = std::max<size_type>(Cap * 2, MinCap);
    NewCap = std::max<size_type>(NewCap, 4);
    T *NewData = static_cast<T *>(malloc(NewCap * sizeof(T)));
    if (!NewData)
      std::abort();
    if constexpr (std::is_trivially_copyable_v<T>) {
      if (Count)
        std::memcpy(static_cast<void *>(NewData), Data, Count * sizeof(T));
    } else {
      for (size_type I = 0; I != Count; ++I) {
        ::new (static_cast<void *>(NewData + I)) T(std::move(Data[I]));
        Data[I].~T();
      }
    }
    if (!isSmall())
      free(Data);
    Data = NewData;
    Cap = NewCap;
  }

  static void destroyRange(T *First, T *Last) {
    if constexpr (!std::is_trivially_destructible_v<T>)
      for (; First != Last; ++First)
        First->~T();
  }

  T *Data;
  size_type Count = 0;
  size_type Cap;
  size_type InlineCap;

  /// Byte offset from a SmallVectorImpl header to the inline buffer of the
  /// concrete SmallVector that derives from it. Identical for every N since
  /// the buffer is the first (aligned) member of the derived class.
  static constexpr size_t InlineBufOffset =
      (sizeof(SmallVectorImpl) + alignof(T) - 1) / alignof(T) * alignof(T);
};

/// A vector with N elements of inline storage.
template <typename T, unsigned N> class SmallVector : public SmallVectorImpl<T> {
  static_assert(N > 0, "SmallVector requires a nonzero inline capacity");
  alignas(T) char InlineStorage[N * sizeof(T)];

  using Impl = SmallVectorImpl<T>;

public:
  SmallVector() : Impl(reinterpret_cast<T *>(InlineStorage), N) {
    // The base recovers the inline buffer from a fixed layout offset (see
    // InlineBufOffset); confirm the derived layout actually matches.
    assert(this->inlineBuffer() == reinterpret_cast<T *>(InlineStorage) &&
           "inline buffer offset mismatch");
  }

  SmallVector(std::initializer_list<T> IL) : SmallVector() {
    this->append(IL.begin(), IL.end());
  }

  template <typename InputIt>
  SmallVector(InputIt First, InputIt Last) : SmallVector() {
    this->append(First, Last);
  }

  explicit SmallVector(typename Impl::size_type Sz) : SmallVector() {
    this->resize(Sz);
  }

  SmallVector(typename Impl::size_type Sz, const T &V) : SmallVector() {
    this->resize(Sz, V);
  }

  SmallVector(const SmallVector &RHS) : SmallVector() {
    this->append(RHS.begin(), RHS.end());
  }

  SmallVector(const Impl &RHS) : SmallVector() {
    this->append(RHS.begin(), RHS.end());
  }

  SmallVector(SmallVector &&RHS) : SmallVector() {
    Impl::operator=(std::move(RHS));
  }

  SmallVector(Impl &&RHS) : SmallVector() { Impl::operator=(std::move(RHS)); }

  SmallVector &operator=(const SmallVector &RHS) {
    Impl::operator=(RHS);
    return *this;
  }
  SmallVector &operator=(const Impl &RHS) {
    Impl::operator=(RHS);
    return *this;
  }
  SmallVector &operator=(SmallVector &&RHS) {
    Impl::operator=(std::move(RHS));
    return *this;
  }
  SmallVector &operator=(Impl &&RHS) {
    Impl::operator=(std::move(RHS));
    return *this;
  }
  SmallVector &operator=(std::initializer_list<T> IL) {
    this->assign(IL);
    return *this;
  }
};

} // namespace epre

#endif // EPRE_SUPPORT_SMALLVECTOR_H
