//===- support/StringUtil.cpp ---------------------------------------------===//

#include "support/StringUtil.h"

#include <cstdio>
#include <vector>

using namespace epre;

std::string epre::strprintf(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Len = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  std::string Out;
  if (Len > 0) {
    std::vector<char> Buf(Len + 1);
    std::vsnprintf(Buf.data(), Buf.size(), Fmt, ArgsCopy);
    Out.assign(Buf.data(), Len);
  }
  va_end(ArgsCopy);
  return Out;
}
