//===- support/StringUtil.h - Small string helpers -------------*- C++ -*-===//
///
/// \file
/// printf-style std::string formatting and a deterministic 64-bit hash
/// combiner used for value-numbering keys and memory-image digests.
///
//===----------------------------------------------------------------------===//

#ifndef EPRE_SUPPORT_STRINGUTIL_H
#define EPRE_SUPPORT_STRINGUTIL_H

#include <cstdarg>
#include <cstdint>
#include <string>

namespace epre {

/// Formats like printf into a std::string.
std::string strprintf(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Deterministic 64-bit hash combiner (a splitmix64-style mix).
inline uint64_t hashCombine(uint64_t Seed, uint64_t V) {
  V += 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2);
  V = (V ^ (V >> 30)) * 0xbf58476d1ce4e5b9ULL;
  V = (V ^ (V >> 27)) * 0x94d049bb133111ebULL;
  return Seed ^ (V ^ (V >> 31));
}

} // namespace epre

#endif // EPRE_SUPPORT_STRINGUTIL_H
