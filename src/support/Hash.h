//===- support/Hash.h - Shared chunked 64-bit hashing ------------*- C++ -*-===//
///
/// \file
/// The repo's one home for content hashing. Two digests used to live as
/// ad-hoc copies — the PassInstrumentation printed-IR snapshot hash and the
/// interpreter's MemoryImage differential-testing digest — each with its own
/// byte loop. Both now share the single chunked traversal below (mix the
/// size first, then full native-endian 8-byte words, then one zero-padded
/// tail word), parameterized on the combining step:
///
///  - hashBytes() / hashString(): FNV-1a, 64-bit, one multiply per 8-byte
///    word. Used for printed-IR change detection and as the
///    content-addressed key of the serve layer's ResultCache. Not pinned:
///    callers only compare digests computed within one process ecosystem.
///
///  - hashMemoryImage(): the hashCombine-chained digest of a memory image.
///    This one IS pinned (tests/eval_interp_test.cpp documents the
///    little-endian constants) — it is a cross-run contract for
///    differential testing, so its mixing step and seed must not change.
///
/// Words are read in native byte order, matching the MemoryImage store/load
/// paths. Mixing the size first keeps images/strings that differ only by
/// trailing zero bytes from colliding.
///
//===----------------------------------------------------------------------===//

#ifndef EPRE_SUPPORT_HASH_H
#define EPRE_SUPPORT_HASH_H

#include "support/StringUtil.h"

#include <cstdint>
#include <cstring>
#include <string_view>

namespace epre {

/// FNV-1a 64-bit parameters (the historical constants every caller in this
/// repo already used).
inline constexpr uint64_t FNV1aBasis = 1469598103934665603ull;
inline constexpr uint64_t FNV1aPrime = 1099511628211ull;

/// One FNV-1a combining step over a whole 8-byte word.
inline uint64_t fnv1aStep(uint64_t H, uint64_t W) {
  return (H ^ W) * FNV1aPrime;
}

namespace hash_detail {

/// The shared chunked traversal: full 8-byte words in native byte order,
/// then one zero-padded tail word when the size is not a multiple of 8.
/// \p Mix defines the combining step; \p H is the already-seeded state.
template <class MixFn>
uint64_t chunked(const void *Data, size_t Size, uint64_t H, MixFn Mix) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  size_t I = 0;
  for (; I + 8 <= Size; I += 8) {
    uint64_t W;
    std::memcpy(&W, P + I, 8);
    H = Mix(H, W);
  }
  if (I < Size) {
    uint64_t W = 0;
    std::memcpy(&W, P + I, Size - I);
    H = Mix(H, W);
  }
  return H;
}

} // namespace hash_detail

/// Chunked FNV-1a-64 over a byte range: the size is mixed first, then the
/// words. Deterministic across runs; cheap (one xor-multiply per 8 bytes).
inline uint64_t hashBytes(const void *Data, size_t Size,
                          uint64_t Seed = FNV1aBasis) {
  return hash_detail::chunked(Data, Size, fnv1aStep(Seed, Size),
                              [](uint64_t H, uint64_t W) {
                                return fnv1aStep(H, W);
                              });
}

/// hashBytes over a string's characters (printed IR, cache key material).
inline uint64_t hashString(std::string_view S) {
  return hashBytes(S.data(), S.size());
}

/// The MemoryImage digest: size mixed into a fixed seed with hashCombine,
/// then hashCombine per word. Pinned contract — see the file comment.
inline uint64_t hashMemoryImage(const uint8_t *Data, size_t Size) {
  uint64_t H = hashCombine(0x243f6a8885a308d3ULL, Size);
  return hash_detail::chunked(Data, Size, H, [](uint64_t A, uint64_t B) {
    return hashCombine(A, B);
  });
}

} // namespace epre

#endif // EPRE_SUPPORT_HASH_H
