//===- tests/fuzz_corpus_test.cpp - Seed corpus through the full oracle ---===//
///
/// \file
/// Replays every tests/corpus/*.iloc program — hand-written CFG nasties
/// (diamonds, critical edges, nested and irreducible loops, memory
/// dependences) — through the full differential oracle matrix. The corpus
/// is integer-only, so every configuration, including the FP-reassociating
/// ones, must be bit-exact.
///
//===----------------------------------------------------------------------===//

#include "fuzz/ModuleOps.h"
#include "fuzz/Oracle.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace epre;
using namespace epre::fuzz;

namespace {

std::vector<std::string> corpusFiles() {
  std::vector<std::string> Files;
  for (const auto &E :
       std::filesystem::directory_iterator(EPRE_CORPUS_DIR))
    if (E.path().extension() == ".iloc")
      Files.push_back(E.path().string());
  std::sort(Files.begin(), Files.end());
  return Files;
}

/// Same argument synthesis as the epre-fuzz driver's -replay mode.
FuzzProgram loadCorpusProgram(const std::string &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << Path;
  std::stringstream SS;
  SS << In.rdbuf();

  FuzzProgram P;
  P.Text = SS.str();
  P.Shape = "corpus";
  P.MemBytes = 4096;

  std::unique_ptr<Module> M = parseModuleText(P.Text);
  EXPECT_NE(M, nullptr) << Path;
  if (!M)
    return P;
  const Function &F = *M->Functions[0];
  int64_t NextI = 7;
  double NextF = 1.5;
  for (Reg R : F.params()) {
    if (F.regType(R) == Type::I64) {
      P.Args.push_back(RtValue::ofI(NextI));
      NextI = -NextI + 5;
    } else {
      P.Args.push_back(RtValue::ofF(NextF));
      NextF = -NextF + 0.75;
    }
  }
  return P;
}

TEST(FuzzCorpus, HasEntries) {
  EXPECT_GE(corpusFiles().size(), 6u);
}

TEST(FuzzCorpus, EntriesAreVerifierClean) {
  for (const std::string &Path : corpusFiles()) {
    std::string Err;
    std::unique_ptr<Module> M = parseModuleText(
        loadCorpusProgram(Path).Text, &Err);
    ASSERT_NE(M, nullptr) << Path << ": " << Err;
    EXPECT_TRUE(verifyModule(*M, SSAMode::Relaxed).empty()) << Path;
  }
}

TEST(FuzzCorpus, FullOracleMatrixIsClean) {
  OracleOptions OO;
  std::vector<OracleConfig> Configs = oracleConfigs(/*Quick=*/false);
  for (const std::string &Path : corpusFiles()) {
    FuzzProgram P = loadCorpusProgram(Path);
    OracleResult OR = runDifferentialOracle(P, OO, Configs);
    EXPECT_FALSE(OR.Inconclusive) << Path;
    EXPECT_FALSE(OR.Mismatch) << Path;
    for (const OracleFinding &F : OR.Findings)
      ADD_FAILURE() << Path << " [" << F.Config
                    << "] " << mismatchKindName(F.Kind) << ": " << F.Detail;
    EXPECT_EQ(OR.ConfigsRun, Configs.size()) << Path;
  }
}

} // namespace
