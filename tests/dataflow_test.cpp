//===- tests/dataflow_test.cpp - Worklist vs round-robin equivalence ------===//
///
/// The worklist dataflow engine must compute exactly the same fixpoints as
/// the pre-change round-robin solver: AVAIL/ANT inside PRE, live sets in
/// Liveness, and (end to end) identical PRE rewrites. Checked on the
/// paper's running example and on generated loop-nest inputs of increasing
/// size (the bench corpus).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/CFG.h"
#include "analysis/Liveness.h"
#include "pre/PRE.h"
#include "ssa/SSA.h"
#include "support/StringUtil.h"

#include <gtest/gtest.h>

using namespace epre;
using epre::test::runPass;

namespace {

const char *FooSource = R"(
function foo(y, z)
  s = 0
  x = y + z
  do i = x, 100
    s = i + s + x
  end do
  return s
end
)";

/// Same shape as the bench generator: sequential loop nests with shared
/// invariant subexpressions and array addressing.
std::string loopNestSource(unsigned NumLoops) {
  std::string S = "function gen(a, b, n)\n  integer n\n  real w(64)\n";
  S += "  s = 0.0\n";
  for (unsigned L = 0; L < NumLoops; ++L) {
    S += strprintf("  do i%u = 1, n\n", L);
    S += strprintf("    w(i%u) = (a + b) * i%u + a * %u.0\n", L, L, L + 1);
    S += strprintf("    s = s + w(i%u) + (a + b + %u.0)\n", L, L);
    S += "  end do\n";
  }
  S += "  return s\nend\n";
  return S;
}

std::unique_ptr<Module> compile(const std::string &Src, NamingMode NM) {
  LowerResult LR = compileMiniFortran(Src, NM);
  EXPECT_TRUE(LR.ok()) << LR.Error;
  return std::move(LR.M);
}

void expectSetsEqual(const std::vector<BitVector> &A,
                     const std::vector<BitVector> &B, const char *What) {
  ASSERT_EQ(A.size(), B.size()) << What;
  for (unsigned I = 0; I < A.size(); ++I)
    EXPECT_EQ(A[I], B[I]) << What << " differs at block " << I;
}

/// AVAIL/ANT sets from both solvers must be bit-identical.
void checkPREDataflowEquivalence(const std::string &Src,
                                 const std::string &Fn) {
  auto M1 = compile(Src, NamingMode::Hashed);
  auto M2 = compile(Src, NamingMode::Hashed);
  ASSERT_TRUE(M1 && M2);
  PREDataflow W =
      analyzePartialRedundancies(*M1->find(Fn), DataflowSolverKind::Worklist);
  PREDataflow R = analyzePartialRedundancies(*M2->find(Fn),
                                             DataflowSolverKind::RoundRobin);
  EXPECT_EQ(W.Stats.UniverseSize, R.Stats.UniverseSize);
  expectSetsEqual(W.AVIN, R.AVIN, "AVIN");
  expectSetsEqual(W.AVOUT, R.AVOUT, "AVOUT");
  expectSetsEqual(W.ANTIN, R.ANTIN, "ANTIN");
  expectSetsEqual(W.ANTOUT, R.ANTOUT, "ANTOUT");
  // The worklist solve must not be doing more transfer evaluations than the
  // dense sweep — that is the whole point.
  EXPECT_LE(W.Stats.AvailSolve.Iterations, R.Stats.AvailSolve.Iterations);
  EXPECT_LE(W.Stats.AntSolve.Iterations, R.Stats.AntSolve.Iterations);
}

/// Live-in/live-out from both solvers must be bit-identical.
void checkLivenessEquivalence(const std::string &Src, const std::string &Fn,
                              bool SSAForm) {
  auto M = compile(Src, NamingMode::Naive);
  ASSERT_TRUE(M);
  Function &F = *M->find(Fn);
  if (SSAForm)
    runPass(F, SSABuildPass());
  CFG G = CFG::compute(F);
  Liveness W = Liveness::compute(F, G, DataflowSolverKind::Worklist);
  Liveness R = Liveness::compute(F, G, DataflowSolverKind::RoundRobin);
  for (unsigned B = 0; B < F.numBlocks(); ++B) {
    if (!F.block(B))
      continue;
    EXPECT_EQ(W.liveIn(B), R.liveIn(B)) << "LiveIn differs at block " << B;
    EXPECT_EQ(W.liveOut(B), R.liveOut(B)) << "LiveOut differs at block " << B;
  }
  EXPECT_LE(W.solveStats().Iterations, R.solveStats().Iterations);
}

/// Full PRE must produce the identical rewrite (printed IR and stats) no
/// matter which solver ran the fixpoints.
void checkPRERewriteEquivalence(const std::string &Src, const std::string &Fn,
                                PREStrategy Strategy) {
  auto M1 = compile(Src, NamingMode::Hashed);
  auto M2 = compile(Src, NamingMode::Hashed);
  ASSERT_TRUE(M1 && M2);
  PREStats W = runPass(*M1->find(Fn),
                       PREPass(Strategy, DataflowSolverKind::Worklist))
                   .lastStats();
  PREStats R = runPass(*M2->find(Fn),
                       PREPass(Strategy, DataflowSolverKind::RoundRobin))
                   .lastStats();
  EXPECT_EQ(W.Inserted, R.Inserted);
  EXPECT_EQ(W.Deleted, R.Deleted);
  EXPECT_EQ(W.EdgesSplit, R.EdgesSplit);
  EXPECT_EQ(printFunction(*M1->find(Fn)), printFunction(*M2->find(Fn)));
}

TEST(DataflowEquivalence, PaperExamplePRESets) {
  checkPREDataflowEquivalence(FooSource, "foo");
}

TEST(DataflowEquivalence, PaperExampleLiveness) {
  checkLivenessEquivalence(FooSource, "foo", /*SSAForm=*/false);
  checkLivenessEquivalence(FooSource, "foo", /*SSAForm=*/true);
}

TEST(DataflowEquivalence, PaperExamplePRERewrite) {
  checkPRERewriteEquivalence(FooSource, "foo", PREStrategy::LazyCodeMotion);
  checkPRERewriteEquivalence(FooSource, "foo", PREStrategy::MorelRenvoise);
  checkPRERewriteEquivalence(FooSource, "foo", PREStrategy::GlobalCSE);
}

class DataflowEquivalenceLoopNests : public testing::TestWithParam<unsigned> {
};

TEST_P(DataflowEquivalenceLoopNests, PRESets) {
  checkPREDataflowEquivalence(loopNestSource(GetParam()), "gen");
}

TEST_P(DataflowEquivalenceLoopNests, Liveness) {
  checkLivenessEquivalence(loopNestSource(GetParam()), "gen",
                           /*SSAForm=*/false);
}

TEST_P(DataflowEquivalenceLoopNests, PRERewrite) {
  checkPRERewriteEquivalence(loopNestSource(GetParam()), "gen",
                             PREStrategy::LazyCodeMotion);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DataflowEquivalenceLoopNests,
                         testing::Values(1u, 4u, 16u, 64u));

/// The fused Gen/Kill problem formulation must solve to exactly the same
/// fixpoint as the same transfer posed as a general in-place lambda, on
/// both solvers. Uses the liveness system of a generated input.
TEST(DataflowEquivalence, GenKillMatchesGenericTransfer) {
  auto M = compile(loopNestSource(8), NamingMode::Naive);
  ASSERT_TRUE(M);
  Function &F = *M->find("gen");
  CFG G = CFG::compute(F);
  Liveness L = Liveness::compute(F, G);

  BitDataflowProblem Fused;
  Fused.Dir = DataflowDirection::Backward;
  Fused.Meet = MeetOp::Union;
  Fused.NumBits = unsigned(F.numRegs());
  std::vector<BitVector> Gen, Kill;
  for (unsigned B = 0; B < F.numBlocks(); ++B) {
    Gen.push_back(L.upwardExposed(B));
    Kill.push_back(L.kill(B));
  }
  Fused.Gen = &Gen;
  Fused.Kill = &Kill;

  BitDataflowProblem Generic = Fused;
  Generic.Gen = nullptr;
  Generic.Kill = nullptr;
  Generic.Transfer = [&](BlockId B, BitVector &S) {
    S.intersectWithComplement(Kill[B]);
    S.unionWith(Gen[B]);
  };

  for (auto K :
       {DataflowSolverKind::Worklist, DataflowSolverKind::RoundRobin}) {
    std::vector<BitVector> FO, FI, GO, GI;
    solveBitDataflow(G, Fused, FO, FI, K);
    solveBitDataflow(G, Generic, GO, GI, K);
    expectSetsEqual(FO, GO, "LiveOut fused vs generic");
    expectSetsEqual(FI, GI, "LiveIn fused vs generic");
  }
}

/// The parallel pipeline driver must produce exactly what the serial one
/// does, function by function, in module order.
TEST(PipelineParallel, MatchesSerialOnMultiFunctionModule) {
  std::string Src;
  for (unsigned I = 0; I < 6; ++I) {
    std::string One = loopNestSource(3 + I);
    // Rename each copy so the module holds distinct functions.
    size_t Pos = One.find("function gen");
    One.replace(Pos, 12, "function gen" + std::to_string(I));
    Src += One;
  }
  auto MSerial = compile(Src, NamingMode::Naive);
  auto MParallel = compile(Src, NamingMode::Naive);
  ASSERT_TRUE(MSerial && MParallel);
  ASSERT_EQ(MSerial->Functions.size(), 6u);

  PipelineOptions PO;
  PO.Level = OptLevel::Distribution;
  std::vector<PipelineStats> S = optimizeModule(*MSerial, PO);
  std::vector<PipelineStats> P = runPipelineParallel(*MParallel, PO, 4);
  ASSERT_EQ(S.size(), P.size());
  for (unsigned I = 0; I < S.size(); ++I) {
    EXPECT_EQ(S[I].opsAfter(), P[I].opsAfter()) << "function " << I;
    EXPECT_EQ(S[I].preDeleted(), P[I].preDeleted()) << "function " << I;
    EXPECT_EQ(printFunction(*MSerial->Functions[I]),
              printFunction(*MParallel->Functions[I]))
        << "function " << I;
  }
}

} // namespace
