//===- tests/analysis_manager_test.cpp - Cached analyses ------------------===//
///
/// Unit tests for the FunctionAnalysisManager: cache hits on unchanged IR,
/// invalidation on version bumps, the finishPass restamp protocol, the
/// PreservedAnalyses dependency normalization, and the disabled
/// (always-recompute) mode used for differential testing.
///
//===----------------------------------------------------------------------===//

#include "analysis/AnalysisManager.h"
#include "analysis/EdgeSplitting.h"
#include "instrument/Profile.h"
#include "ir/IRParser.h"

#include <gtest/gtest.h>

#include <string_view>

using namespace epre;

namespace {

std::unique_ptr<Module> parse(const char *Src) {
  ParseResult R = parseModule(Src);
  EXPECT_TRUE(R.ok()) << R.Error;
  return std::move(R.M);
}

const char *Diamond = R"(
func @f(%p:i64) {
^e:
  cbr %p, ^a, ^b
^a:
  br ^j
^b:
  br ^j
^j:
  ret
}
)";

TEST(AnalysisManager, RepeatedAccessHitsCache) {
  auto M = parse(Diamond);
  Function &F = *M->Functions[0];
  FunctionAnalysisManager AM(F, /*Disabled=*/false);

  const CFG &G1 = AM.cfg();
  const CFG &G2 = AM.cfg();
  EXPECT_EQ(&G1, &G2) << "same object on a cache hit";
  EXPECT_EQ(AM.stats().computes(AnalysisID::CFGAnalysis), 1u);
  EXPECT_EQ(AM.stats().hits(AnalysisID::CFGAnalysis), 1u);
}

TEST(AnalysisManager, VersionBumpForcesRecompute) {
  auto M = parse(Diamond);
  Function &F = *M->Functions[0];
  FunctionAnalysisManager AM(F, /*Disabled=*/false);

  AM.cfg();
  F.bumpVersion();
  AM.cfg();
  EXPECT_EQ(AM.stats().computes(AnalysisID::CFGAnalysis), 2u);
  EXPECT_EQ(AM.stats().hits(AnalysisID::CFGAnalysis), 0u);
}

TEST(AnalysisManager, MakeRegBumpsVersion) {
  auto M = parse(Diamond);
  Function &F = *M->Functions[0];
  uint64_t V = F.version();
  F.makeReg(Type::I64);
  EXPECT_GT(F.version(), V);
}

TEST(AnalysisManager, FinishPassRestampsPreserved) {
  auto M = parse(Diamond);
  Function &F = *M->Functions[0];
  FunctionAnalysisManager AM(F, /*Disabled=*/false);

  AM.domTree();
  // A pass that rewrote instructions but kept the graph: CFG and DomTree
  // survive the version bump through the restamp.
  F.bumpVersion();
  AM.finishPass(PreservedAnalyses::cfgShape());
  AM.domTree();
  EXPECT_EQ(AM.stats().computes(AnalysisID::DomTreeAnalysis), 1u);
  EXPECT_EQ(AM.stats().hits(AnalysisID::DomTreeAnalysis), 1u);
}

TEST(AnalysisManager, FinishPassNoneDropsEverything) {
  auto M = parse(Diamond);
  Function &F = *M->Functions[0];
  FunctionAnalysisManager AM(F, /*Disabled=*/false);

  AM.domTree();
  F.bumpVersion();
  AM.finishPass(PreservedAnalyses::none());
  AM.domTree();
  EXPECT_EQ(AM.stats().computes(AnalysisID::CFGAnalysis), 2u);
  EXPECT_EQ(AM.stats().computes(AnalysisID::DomTreeAnalysis), 2u);
}

TEST(AnalysisManager, CfgShapeDoesNotPreserveRanks) {
  auto M = parse(Diamond);
  Function &F = *M->Functions[0];
  FunctionAnalysisManager AM(F, /*Disabled=*/false);

  AM.ranks();
  F.bumpVersion();
  AM.finishPass(PreservedAnalyses::cfgShape());
  AM.ranks();
  EXPECT_EQ(AM.stats().computes(AnalysisID::RankAnalysis), 2u)
      << "instruction rewrites change rank assignments";
}

TEST(AnalysisManager, NormalizationDropsDerivedAnalyses) {
  // Claiming DomTree without CFG is contradictory; normalization drops the
  // derived analysis rather than serving one built on a dead input.
  PreservedAnalyses PA = PreservedAnalyses::none()
                             .preserve(AnalysisID::DomTreeAnalysis)
                             .preserve(AnalysisID::LoopAnalysis)
                             .normalized();
  EXPECT_FALSE(PA.isPreserved(AnalysisID::DomTreeAnalysis));
  EXPECT_FALSE(PA.isPreserved(AnalysisID::LoopAnalysis));

  PreservedAnalyses PB = PreservedAnalyses::none()
                             .preserve(AnalysisID::CFGAnalysis)
                             .preserve(AnalysisID::LoopAnalysis)
                             .normalized();
  EXPECT_TRUE(PB.isPreserved(AnalysisID::CFGAnalysis));
  EXPECT_FALSE(PB.isPreserved(AnalysisID::LoopAnalysis))
      << "loops depend on the dominator tree, which was not preserved";
}

namespace {

BlockId byLabel(const Function &F, std::string_view L) {
  BlockId Out = InvalidBlock;
  F.forEachBlock([&](const BasicBlock &B) {
    if (B.label() == L)
      Out = B.id();
  });
  EXPECT_NE(Out, InvalidBlock) << "no block labeled " << L;
  return Out;
}

FunctionProfile diamondProfile(const char *FnName) {
  FunctionProfile FP;
  FP.Function = FnName;
  auto Add = [&](const char *L, uint64_t C,
                 std::vector<BlockProfile::Edge> Edges = {}) {
    BlockProfile B;
    B.Label = L;
    B.Count = C;
    B.Edges = std::move(Edges);
    FP.Blocks.push_back(std::move(B));
  };
  Add("e", 10, {{"a", 7}, {"b", 3}});
  Add("a", 7);
  Add("b", 3);
  Add("j", 10);
  Add("gone", 99); // stale label from before a CFG cleanup: must be ignored
  return FP;
}

} // namespace

TEST(AnalysisManager, ProfileInfoJoinsByLabel) {
  auto M = parse(Diamond);
  Function &F = *M->Functions[0];
  FunctionAnalysisManager AM(F, /*Disabled=*/false);
  FunctionProfile FP = diamondProfile(F.name().c_str());
  AM.setProfileSource(&FP);

  const ProfileInfo &PI = AM.profileInfo();
  BlockId E = byLabel(F, "e"), A = byLabel(F, "a"), B = byLabel(F, "b"),
          J = byLabel(F, "j");
  EXPECT_TRUE(PI.attached());
  EXPECT_EQ(PI.entryWeight(), 10u);
  EXPECT_EQ(PI.blockWeight(A), 7u);
  EXPECT_EQ(PI.blockWeight(B), 3u);
  EXPECT_EQ(PI.edgeWeight(E, A), 7u);
  EXPECT_EQ(PI.edgeWeight(E, B), 3u);
  // a -> j has no recorded count, but a has a single successor: the
  // fallthrough inherits the block weight.
  EXPECT_EQ(PI.edgeWeight(A, J), 7u);
  EXPECT_TRUE(PI.blockKnown(E));
  EXPECT_TRUE(PI.edgeKnown(E, A));
  EXPECT_TRUE(PI.edgeKnown(A, J));

  // Without a source the analysis is detached and uniformly zero.
  AM.setProfileSource(nullptr);
  const ProfileInfo &None = AM.profileInfo();
  EXPECT_FALSE(None.attached());
  EXPECT_EQ(None.blockWeight(A), 0u);
}

TEST(AnalysisManager, ProfileInfoCachesAndSurvivesCfgShape) {
  auto M = parse(Diamond);
  Function &F = *M->Functions[0];
  FunctionAnalysisManager AM(F, /*Disabled=*/false);
  FunctionProfile FP = diamondProfile(F.name().c_str());
  AM.setProfileSource(&FP);

  const ProfileInfo &P1 = AM.profileInfo();
  const ProfileInfo &P2 = AM.profileInfo();
  EXPECT_EQ(&P1, &P2) << "same object on a cache hit";
  EXPECT_EQ(AM.stats().computes(AnalysisID::ProfileAnalysis), 1u);
  EXPECT_EQ(AM.stats().hits(AnalysisID::ProfileAnalysis), 1u);

  // Instruction rewrites that keep the block graph keep the mapping.
  F.bumpVersion();
  AM.finishPass(PreservedAnalyses::cfgShape());
  AM.profileInfo();
  EXPECT_EQ(AM.stats().computes(AnalysisID::ProfileAnalysis), 1u);
}

TEST(AnalysisManager, ProfileInfoRemapsAfterCfgMutation) {
  auto M = parse(Diamond);
  Function &F = *M->Functions[0];
  FunctionAnalysisManager AM(F, /*Disabled=*/false);
  FunctionProfile FP = diamondProfile(F.name().c_str());
  AM.setProfileSource(&FP);

  BlockId E = byLabel(F, "e"), A = byLabel(F, "a");
  EXPECT_EQ(AM.profileInfo().edgeWeight(E, A), 7u);

  // A CFG-mutating pass (edge splitting, as PRE does) invalidates the
  // mapping; the recomputed join still weights the surviving labels and
  // treats the new block as unknown.
  BasicBlock *Mid = splitEdge(F, E, A);
  AM.finishPass(PreservedAnalyses::none());
  const ProfileInfo &PI = AM.profileInfo();
  EXPECT_EQ(AM.stats().computes(AnalysisID::ProfileAnalysis), 2u);
  EXPECT_TRUE(PI.attached());
  EXPECT_EQ(PI.blockWeight(A), 7u);
  EXPECT_FALSE(PI.blockKnown(Mid->id()));
  EXPECT_EQ(PI.blockWeight(Mid->id()), 0u);
  // The old e -> a edge no longer exists, so its recorded count must not
  // leak onto e -> mid (unknown) or mid -> a (fallthrough of an unknown
  // block).
  EXPECT_FALSE(PI.edgeKnown(E, Mid->id()));
  EXPECT_FALSE(PI.edgeKnown(Mid->id(), A));
}

TEST(AnalysisManager, DisabledModeAlwaysRecomputes) {
  auto M = parse(Diamond);
  Function &F = *M->Functions[0];
  FunctionAnalysisManager AM(F, /*Disabled=*/true);

  AM.cfg();
  AM.cfg();
  EXPECT_EQ(AM.stats().computes(AnalysisID::CFGAnalysis), 2u);
  EXPECT_EQ(AM.stats().hits(AnalysisID::CFGAnalysis), 0u);
}

TEST(AnalysisManager, DerivedAnalysisChainIsCached) {
  auto M = parse(Diamond);
  Function &F = *M->Functions[0];
  FunctionAnalysisManager AM(F, /*Disabled=*/false);

  AM.loopInfo(); // pulls in CFG and DomTree
  AM.loopInfo();
  EXPECT_EQ(AM.stats().computes(AnalysisID::CFGAnalysis), 1u);
  EXPECT_EQ(AM.stats().computes(AnalysisID::DomTreeAnalysis), 1u);
  EXPECT_EQ(AM.stats().computes(AnalysisID::LoopAnalysis), 1u);
  EXPECT_EQ(AM.stats().hits(AnalysisID::LoopAnalysis), 1u);
}

} // namespace
