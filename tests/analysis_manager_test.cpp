//===- tests/analysis_manager_test.cpp - Cached analyses ------------------===//
///
/// Unit tests for the FunctionAnalysisManager: cache hits on unchanged IR,
/// invalidation on version bumps, the finishPass restamp protocol, the
/// PreservedAnalyses dependency normalization, and the disabled
/// (always-recompute) mode used for differential testing.
///
//===----------------------------------------------------------------------===//

#include "analysis/AnalysisManager.h"
#include "ir/IRParser.h"

#include <gtest/gtest.h>

using namespace epre;

namespace {

std::unique_ptr<Module> parse(const char *Src) {
  ParseResult R = parseModule(Src);
  EXPECT_TRUE(R.ok()) << R.Error;
  return std::move(R.M);
}

const char *Diamond = R"(
func @f(%p:i64) {
^e:
  cbr %p, ^a, ^b
^a:
  br ^j
^b:
  br ^j
^j:
  ret
}
)";

TEST(AnalysisManager, RepeatedAccessHitsCache) {
  auto M = parse(Diamond);
  Function &F = *M->Functions[0];
  FunctionAnalysisManager AM(F, /*Disabled=*/false);

  const CFG &G1 = AM.cfg();
  const CFG &G2 = AM.cfg();
  EXPECT_EQ(&G1, &G2) << "same object on a cache hit";
  EXPECT_EQ(AM.stats().computes(AnalysisID::CFGAnalysis), 1u);
  EXPECT_EQ(AM.stats().hits(AnalysisID::CFGAnalysis), 1u);
}

TEST(AnalysisManager, VersionBumpForcesRecompute) {
  auto M = parse(Diamond);
  Function &F = *M->Functions[0];
  FunctionAnalysisManager AM(F, /*Disabled=*/false);

  AM.cfg();
  F.bumpVersion();
  AM.cfg();
  EXPECT_EQ(AM.stats().computes(AnalysisID::CFGAnalysis), 2u);
  EXPECT_EQ(AM.stats().hits(AnalysisID::CFGAnalysis), 0u);
}

TEST(AnalysisManager, MakeRegBumpsVersion) {
  auto M = parse(Diamond);
  Function &F = *M->Functions[0];
  uint64_t V = F.version();
  F.makeReg(Type::I64);
  EXPECT_GT(F.version(), V);
}

TEST(AnalysisManager, FinishPassRestampsPreserved) {
  auto M = parse(Diamond);
  Function &F = *M->Functions[0];
  FunctionAnalysisManager AM(F, /*Disabled=*/false);

  AM.domTree();
  // A pass that rewrote instructions but kept the graph: CFG and DomTree
  // survive the version bump through the restamp.
  F.bumpVersion();
  AM.finishPass(PreservedAnalyses::cfgShape());
  AM.domTree();
  EXPECT_EQ(AM.stats().computes(AnalysisID::DomTreeAnalysis), 1u);
  EXPECT_EQ(AM.stats().hits(AnalysisID::DomTreeAnalysis), 1u);
}

TEST(AnalysisManager, FinishPassNoneDropsEverything) {
  auto M = parse(Diamond);
  Function &F = *M->Functions[0];
  FunctionAnalysisManager AM(F, /*Disabled=*/false);

  AM.domTree();
  F.bumpVersion();
  AM.finishPass(PreservedAnalyses::none());
  AM.domTree();
  EXPECT_EQ(AM.stats().computes(AnalysisID::CFGAnalysis), 2u);
  EXPECT_EQ(AM.stats().computes(AnalysisID::DomTreeAnalysis), 2u);
}

TEST(AnalysisManager, CfgShapeDoesNotPreserveRanks) {
  auto M = parse(Diamond);
  Function &F = *M->Functions[0];
  FunctionAnalysisManager AM(F, /*Disabled=*/false);

  AM.ranks();
  F.bumpVersion();
  AM.finishPass(PreservedAnalyses::cfgShape());
  AM.ranks();
  EXPECT_EQ(AM.stats().computes(AnalysisID::RankAnalysis), 2u)
      << "instruction rewrites change rank assignments";
}

TEST(AnalysisManager, NormalizationDropsDerivedAnalyses) {
  // Claiming DomTree without CFG is contradictory; normalization drops the
  // derived analysis rather than serving one built on a dead input.
  PreservedAnalyses PA = PreservedAnalyses::none()
                             .preserve(AnalysisID::DomTreeAnalysis)
                             .preserve(AnalysisID::LoopAnalysis)
                             .normalized();
  EXPECT_FALSE(PA.isPreserved(AnalysisID::DomTreeAnalysis));
  EXPECT_FALSE(PA.isPreserved(AnalysisID::LoopAnalysis));

  PreservedAnalyses PB = PreservedAnalyses::none()
                             .preserve(AnalysisID::CFGAnalysis)
                             .preserve(AnalysisID::LoopAnalysis)
                             .normalized();
  EXPECT_TRUE(PB.isPreserved(AnalysisID::CFGAnalysis));
  EXPECT_FALSE(PB.isPreserved(AnalysisID::LoopAnalysis))
      << "loops depend on the dominator tree, which was not preserved";
}

TEST(AnalysisManager, DisabledModeAlwaysRecomputes) {
  auto M = parse(Diamond);
  Function &F = *M->Functions[0];
  FunctionAnalysisManager AM(F, /*Disabled=*/true);

  AM.cfg();
  AM.cfg();
  EXPECT_EQ(AM.stats().computes(AnalysisID::CFGAnalysis), 2u);
  EXPECT_EQ(AM.stats().hits(AnalysisID::CFGAnalysis), 0u);
}

TEST(AnalysisManager, DerivedAnalysisChainIsCached) {
  auto M = parse(Diamond);
  Function &F = *M->Functions[0];
  FunctionAnalysisManager AM(F, /*Disabled=*/false);

  AM.loopInfo(); // pulls in CFG and DomTree
  AM.loopInfo();
  EXPECT_EQ(AM.stats().computes(AnalysisID::CFGAnalysis), 1u);
  EXPECT_EQ(AM.stats().computes(AnalysisID::DomTreeAnalysis), 1u);
  EXPECT_EQ(AM.stats().computes(AnalysisID::LoopAnalysis), 1u);
  EXPECT_EQ(AM.stats().hits(AnalysisID::LoopAnalysis), 1u);
}

} // namespace
