//===- tests/strength_test.cpp - Loop strength reduction ------------------===//

#include "frontend/Lower.h"
#include "interp/Interpreter.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "opt/StrengthReduction.h"
#include "pipeline/Pipeline.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace epre;
using epre::test::runPass;

namespace {

std::unique_ptr<Module> parse(const char *Src) {
  ParseResult R = parseModule(Src);
  EXPECT_TRUE(R.ok()) << R.Error;
  return std::move(R.M);
}

unsigned countOpInBlock(const Function &F, BlockId B, Opcode Op) {
  unsigned N = 0;
  for (const Instruction &I : F.block(B)->Insts)
    N += I.Op == Op;
  return N;
}

// j = i * k inside the loop; i steps by 1.
const char *MulLoop = R"(
func @f(%k:i64, %n:i64) -> i64 {
^e:
  %z:i64 = loadi 0
  %i:i64 = copy %z
  %s:i64 = copy %z
  br ^l
^l:
  %j:i64 = mul %i, %k
  %s:i64 = add %s, %j
  %one:i64 = loadi 1
  %i:i64 = add %i, %one
  %c:i64 = cmplt %i, %n
  cbr %c, ^l, ^x
^x:
  ret %s
}
)";

TEST(StrengthReduction, ReducesMulToAdd) {
  auto M = parse(MulLoop);
  Function &F = *M->Functions[0];
  MemoryImage Mem(0);
  std::vector<RtValue> Args = {RtValue::ofI(7), RtValue::ofI(50)};
  int64_t Before = interpret(F, Args, Mem).ReturnValue.I;

  SRStats S = runPass(F, StrengthReductionPass()).lastStats();
  EXPECT_TRUE(verifyFunction(F, SSAMode::NoSSA).empty())
      << printFunction(F);
  EXPECT_EQ(S.BasicIVs, 1u); // i; s steps by a variant amount
  EXPECT_EQ(S.Reduced, 1u);
  // The loop block no longer multiplies.
  EXPECT_EQ(countOpInBlock(F, 1, Opcode::Mul), 0u) << printFunction(F);

  ExecResult R = interpret(F, Args, Mem);
  ASSERT_TRUE(R.ok()) << R.TrapReason;
  EXPECT_EQ(R.ReturnValue.I, Before);
}

TEST(StrengthReduction, DownCountingLoop) {
  const char *Src = R"(
func @f(%k:i64, %n:i64) -> i64 {
^e:
  %i:i64 = copy %n
  %z:i64 = loadi 0
  %s:i64 = copy %z
  br ^l
^l:
  %j:i64 = mul %k, %i
  %s:i64 = add %s, %j
  %one:i64 = loadi 1
  %i:i64 = sub %i, %one
  %c:i64 = cmpgt %i, %z
  cbr %c, ^l, ^x
^x:
  ret %s
}
)";
  auto M = parse(Src);
  Function &F = *M->Functions[0];
  MemoryImage Mem(0);
  std::vector<RtValue> Args = {RtValue::ofI(3), RtValue::ofI(10)};
  int64_t Before = interpret(F, Args, Mem).ReturnValue.I;
  SRStats S = runPass(F, StrengthReductionPass()).lastStats();
  EXPECT_GE(S.Reduced, 1u);
  ExecResult R = interpret(F, Args, Mem);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ReturnValue.I, Before); // 3 * (10+9+...+1) = 165
  EXPECT_EQ(R.ReturnValue.I, 165);
}

TEST(StrengthReduction, IgnoresVariantFactors) {
  // j = i * s where s changes in the loop: not reducible.
  const char *Src = R"(
func @f(%n:i64) -> i64 {
^e:
  %z:i64 = loadi 0
  %one:i64 = loadi 1
  %i:i64 = copy %z
  %s:i64 = copy %one
  br ^l
^l:
  %j:i64 = mul %i, %s
  %s:i64 = add %s, %j
  %i:i64 = add %i, %one
  %c:i64 = cmplt %i, %n
  cbr %c, ^l, ^x
^x:
  ret %s
}
)";
  auto M = parse(Src);
  Function &F = *M->Functions[0];
  MemoryImage Mem(0);
  int64_t Before =
      interpret(F, {RtValue::ofI(6)}, Mem).ReturnValue.I;
  SRStats S = runPass(F, StrengthReductionPass()).lastStats();
  EXPECT_EQ(S.Reduced, 0u);
  EXPECT_EQ(interpret(F, {RtValue::ofI(6)}, Mem).ReturnValue.I, Before);
}

TEST(StrengthReduction, ArrayAddressingEndToEnd) {
  // The motivating case: array addresses are IV * 8 products. With SR in
  // the pipeline the inner loop should lose its multiplies.
  const char *Src = R"(
function arr(n)
  integer n
  real w(64)
  do i = 1, n
    w(i) = i * 1.5
  end do
  s = 0.0
  do i = 1, n
    s = s + w(i)
  end do
  return s
end
)";
  double Ref = 0;
  uint64_t OpsNoSR = 0, OpsSR = 0;
  for (bool SR : {false, true}) {
    LowerResult LR = compileMiniFortran(Src, NamingMode::Naive);
    ASSERT_TRUE(LR.ok()) << LR.Error;
    Function &F = *LR.M->find("arr");
    PipelineOptions PO;
    PO.Level = OptLevel::Distribution;
    PO.EnableStrengthReduction = SR;
    optimizeFunction(F, PO);
    MemoryImage Mem(LR.Routines[0].LocalMemBytes);
    ExecResult R = interpret(F, {RtValue::ofI(64)}, Mem);
    ASSERT_FALSE(R.Trapped) << R.TrapReason;
    if (!SR) {
      Ref = R.ReturnValue.F;
      OpsNoSR = R.DynOps;
    } else {
      EXPECT_NEAR(R.ReturnValue.F, Ref, 1e-9 * (1 + std::abs(Ref)));
      OpsSR = R.DynOps;
    }
  }
  // The dynamic-operation metric is latency-blind: a multiply and an add
  // both count 1, so SR is roughly count-neutral (its real win is per-op
  // cost; turning the count win into deletions would need linear-function
  // test replacement). It must not blow the counts up, and the loop body
  // itself must have lost its multiplies to additions.
  EXPECT_LE(OpsSR, OpsNoSR + 16);
}

TEST(StrengthReduction, SuiteRoutinesStayCorrectWithSR) {
  // End-to-end safety over a few loop-heavy programs.
  const char *Src = R"(
function mm(n)
  integer n
  real a(8,8), b(8,8)
  do j = 1, n
    do i = 1, n
      a(i,j) = i + 2 * j
      b(i,j) = a(i,j) * 0.5
    end do
  end do
  s = 0.0
  do j = 1, n
    do i = 1, n
      s = s + a(i,j) * b(i,j)
    end do
  end do
  return s
end
)";
  double Ref = 0;
  for (int Mode = 0; Mode < 2; ++Mode) {
    LowerResult LR = compileMiniFortran(Src, NamingMode::Naive);
    ASSERT_TRUE(LR.ok()) << LR.Error;
    Function &F = *LR.M->find("mm");
    PipelineOptions PO;
    PO.Level = Mode ? OptLevel::Distribution : OptLevel::None;
    PO.EnableStrengthReduction = Mode;
    optimizeFunction(F, PO);
    MemoryImage Mem(LR.Routines[0].LocalMemBytes);
    ExecResult R = interpret(F, {RtValue::ofI(8)}, Mem);
    ASSERT_FALSE(R.Trapped) << R.TrapReason;
    if (!Mode)
      Ref = R.ReturnValue.F;
    else
      EXPECT_NEAR(R.ReturnValue.F, Ref, 1e-9 * (1 + std::abs(Ref)));
  }
}

} // namespace
