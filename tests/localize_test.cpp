//===- tests/localize_test.cpp - §5.1 name localization -------------------===//

#include "interp/Interpreter.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "pre/LocalizeNames.h"
#include "pre/PRE.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <set>

using namespace epre;
using epre::test::runPass;
using epre::test::runPassStat;

namespace {

std::unique_ptr<Module> parse(const char *Src) {
  ParseResult R = parseModule(Src);
  EXPECT_TRUE(R.ok()) << R.Error;
  return std::move(R.M);
}

/// No expression name may be used in a block without a local def first.
bool sec51Holds(const Function &F) {
  std::set<Reg> ExprNames;
  F.forEachBlock([&](const BasicBlock &B) {
    for (const Instruction &I : B.Insts)
      if (I.hasDst() && I.isExpression() && !F.isParam(I.Dst))
        ExprNames.insert(I.Dst);
  });
  bool Ok = true;
  F.forEachBlock([&](const BasicBlock &B) {
    std::set<Reg> Defined;
    for (const Instruction &I : B.Insts) {
      for (Reg Op : I.Operands)
        if (ExprNames.count(Op) && !Defined.count(Op))
          Ok = false;
      if (I.hasDst())
        Defined.insert(I.Dst);
    }
  });
  return Ok;
}

// The sqrt example of §5.1, with the result consumed in another block.
const char *CrossBlock = R"(
func @f(%p:i64, %x:i64) -> i64 {
^e:
  %t:i64 = add %x, %x
  cbr %p, ^a, ^j
^a:
  %x:i64 = loadi 100
  %t:i64 = add %x, %x
  br ^j
^j:
  %u:i64 = copy %t
  ret %u
}
)";

TEST(LocalizeNames, EstablishesSec51) {
  auto M = parse(CrossBlock);
  Function &F = *M->Functions[0];
  EXPECT_FALSE(sec51Holds(F));
  unsigned N = unsigned(runPassStat<LocalizeNamesPass>(F, "names"));
  EXPECT_GE(N, 1u); // t, and x (redefined by the loadi) also qualifies
  EXPECT_TRUE(verifyFunction(F, SSAMode::NoSSA).empty())
      << printFunction(F);
  EXPECT_TRUE(sec51Holds(F)) << printFunction(F);
  // Behaviour unchanged on both paths.
  MemoryImage Mem(0);
  EXPECT_EQ(
      interpret(F, {RtValue::ofI(0), RtValue::ofI(7)}, Mem).ReturnValue.I,
      14);
  EXPECT_EQ(
      interpret(F, {RtValue::ofI(1), RtValue::ofI(7)}, Mem).ReturnValue.I,
      200);
}

TEST(LocalizeNames, UnblocksPRE) {
  // With the name localized, PRE keeps the expression in its universe and
  // can delete the recomputation in ^a... which here is NOT redundant
  // (x changed), so instead check a genuinely redundant variant.
  const char *Src = R"(
func @f(%p:i64, %x:i64) -> i64 {
^e:
  %t:i64 = add %x, %x
  cbr %p, ^a, ^j
^a:
  %t:i64 = add %x, %x
  br ^j
^j:
  %u:i64 = copy %t
  ret %u
}
)";
  auto M = parse(Src);
  Function &F = *M->Functions[0];
  // Without localization the cross-block use makes PRE drop the name.
  {
    auto M2 = parse(Src);
    PREStats S = runPass(*M2->Functions[0], PREPass()).lastStats();
    EXPECT_EQ(S.Deleted, 0u);
    EXPECT_GE(S.DroppedUnsafe, 1u);
  }
  // With localization the redundant recomputation in ^a dies.
  runPass(F, LocalizeNamesPass());
  PREStats S = runPass(F, PREPass()).lastStats();
  EXPECT_EQ(S.DroppedUnsafe, 0u);
  EXPECT_EQ(S.Deleted, 1u);
  MemoryImage Mem(0);
  for (int64_t P : {0, 1})
    EXPECT_EQ(interpret(F, {RtValue::ofI(P), RtValue::ofI(7)}, Mem)
                  .ReturnValue.I,
              14);
}

TEST(LocalizeNames, NoWorkWhenAlreadyLocal) {
  auto M = parse(R"(
func @f(%x:i64) -> i64 {
^e:
  %t:i64 = add %x, %x
  %u:i64 = copy %t
  ret %u
}
)");
  EXPECT_EQ(runPassStat<LocalizeNamesPass>(*M->Functions[0], "names"), 0u);
}

TEST(LocalizeNames, HandlesMultipleDefsAndUses) {
  const char *Src = R"(
func @f(%p:i64, %x:i64, %y:i64) -> i64 {
^e:
  %t:i64 = mul %x, %y
  cbr %p, ^a, ^b
^a:
  %t:i64 = mul %x, %y
  %u1:i64 = add %t, %t
  br ^j
^b:
  br ^j
^j:
  %r:i64 = add %t, %t
  ret %r
}
)";
  auto M = parse(Src);
  Function &F = *M->Functions[0];
  int64_t Before0, Before1;
  {
    MemoryImage Mem(0);
    Before0 = interpret(F, {RtValue::ofI(0), RtValue::ofI(3),
                            RtValue::ofI(4)},
                        Mem)
                  .ReturnValue.I;
    Before1 = interpret(F, {RtValue::ofI(1), RtValue::ofI(3),
                            RtValue::ofI(4)},
                        Mem)
                  .ReturnValue.I;
  }
  runPass(F, LocalizeNamesPass());
  EXPECT_TRUE(sec51Holds(F)) << printFunction(F);
  MemoryImage Mem(0);
  EXPECT_EQ(interpret(F, {RtValue::ofI(0), RtValue::ofI(3),
                          RtValue::ofI(4)},
                      Mem)
                .ReturnValue.I,
            Before0);
  EXPECT_EQ(interpret(F, {RtValue::ofI(1), RtValue::ofI(3),
                          RtValue::ofI(4)},
                      Mem)
                .ReturnValue.I,
            Before1);
}

} // namespace
