//===- tests/ir_test.cpp - IR core: opcodes, builder, verifier ------------===//

#include "ir/IRBuilder.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace epre;

namespace {

TEST(Opcode, Traits) {
  EXPECT_TRUE(isCommutative(Opcode::Add));
  EXPECT_TRUE(isCommutative(Opcode::Mul));
  EXPECT_FALSE(isCommutative(Opcode::Sub));
  EXPECT_FALSE(isCommutative(Opcode::Div));
  EXPECT_FALSE(isCommutative(Opcode::Shl));

  EXPECT_TRUE(isAssociative(Opcode::Add));
  EXPECT_TRUE(isAssociative(Opcode::Min));
  EXPECT_TRUE(isAssociative(Opcode::Xor));
  EXPECT_FALSE(isAssociative(Opcode::Sub));
  EXPECT_FALSE(isAssociative(Opcode::Shl)); // the §5.2 pitfall

  EXPECT_TRUE(isTerminator(Opcode::Br));
  EXPECT_TRUE(isTerminator(Opcode::Cbr));
  EXPECT_TRUE(isTerminator(Opcode::Ret));
  EXPECT_FALSE(isTerminator(Opcode::Add));

  EXPECT_TRUE(hasSideEffects(Opcode::Store));
  EXPECT_FALSE(hasSideEffects(Opcode::Call)); // intrinsics are pure
  EXPECT_FALSE(hasSideEffects(Opcode::Load)); // reads are idempotent

  // Loads and copies are not "expressions" in the PRE sense.
  EXPECT_FALSE(isExpression(Opcode::Load));
  EXPECT_FALSE(isExpression(Opcode::Copy));
  EXPECT_FALSE(isExpression(Opcode::Phi));
  EXPECT_TRUE(isExpression(Opcode::Call));
  EXPECT_TRUE(isExpression(Opcode::LoadI));
  EXPECT_TRUE(isExpression(Opcode::CmpLt));
}

TEST(Opcode, OperandCounts) {
  EXPECT_EQ(fixedOperandCount(Opcode::LoadI), 0);
  EXPECT_EQ(fixedOperandCount(Opcode::Neg), 1);
  EXPECT_EQ(fixedOperandCount(Opcode::Add), 2);
  EXPECT_EQ(fixedOperandCount(Opcode::Store), 2);
  EXPECT_EQ(fixedOperandCount(Opcode::Call), -1);
  EXPECT_EQ(fixedOperandCount(Opcode::Phi), -1);
  EXPECT_EQ(intrinsicArity(Intrinsic::Sqrt), 1u);
  EXPECT_EQ(intrinsicArity(Intrinsic::Pow), 2u);
  EXPECT_EQ(intrinsicArity(Intrinsic::Sign), 2u);
}

TEST(Function, RegisterAllocation) {
  Function F("f");
  Reg A = F.makeReg(Type::I64);
  Reg B = F.makeReg(Type::F64);
  EXPECT_NE(A, NoReg);
  EXPECT_NE(A, B);
  EXPECT_EQ(F.regType(A), Type::I64);
  EXPECT_EQ(F.regType(B), Type::F64);
  EXPECT_EQ(F.numRegs(), 3u); // slot 0 is reserved
}

TEST(Function, ParamsAndBlocks) {
  Function F("f");
  Reg P = F.addParam(Type::F64);
  EXPECT_TRUE(F.isParam(P));
  BasicBlock *B0 = F.addBlock("entry");
  BasicBlock *B1 = F.addBlock();
  EXPECT_EQ(B0->id(), 0u);
  EXPECT_EQ(B1->id(), 1u);
  EXPECT_EQ(F.entry(), B0);
  F.eraseBlock(B1->id());
  EXPECT_EQ(F.block(1), nullptr);
  unsigned Count = 0;
  F.forEachBlock([&](BasicBlock &) { ++Count; });
  EXPECT_EQ(Count, 1u);
}

TEST(Verifier, AcceptsWellFormed) {
  Function F("f");
  Reg P = F.addParam(Type::I64);
  F.setReturnType(Type::I64);
  IRBuilder B(F, F.addBlock("entry"));
  Reg C = B.loadI(2);
  Reg S = B.add(P, C);
  B.ret(S);
  EXPECT_TRUE(verifyFunction(F).empty());
}

TEST(Verifier, RejectsMissingTerminator) {
  Function F("f");
  IRBuilder B(F, F.addBlock("entry"));
  B.loadI(1);
  std::vector<std::string> E = verifyFunction(F);
  ASSERT_FALSE(E.empty());
  EXPECT_NE(E[0].find("terminator"), std::string::npos);
}

TEST(Verifier, RejectsMidBlockTerminator) {
  Function F("f");
  BasicBlock *BB = F.addBlock("entry");
  BB->Insts.push_back(Instruction::makeRet());
  BB->Insts.push_back(Instruction::makeRet());
  EXPECT_FALSE(verifyFunction(F).empty());
}

TEST(Verifier, RejectsBadOperandCount) {
  Function F("f");
  BasicBlock *BB = F.addBlock("entry");
  Instruction I;
  I.Op = Opcode::Add;
  I.Ty = Type::I64;
  I.Dst = F.makeReg(Type::I64);
  I.Operands = {}; // add needs two
  BB->Insts.push_back(std::move(I));
  BB->Insts.push_back(Instruction::makeRet());
  EXPECT_FALSE(verifyFunction(F).empty());
}

TEST(Verifier, RejectsTypeErrors) {
  Function F("f");
  Reg FP = F.addParam(Type::F64);
  BasicBlock *BB = F.addBlock("entry");
  // cbr on a float register is ill-typed.
  BasicBlock *T = F.addBlock("t");
  T->Insts.push_back(Instruction::makeRet());
  BB->Insts.push_back(Instruction::makeCbr(FP, T->id(), T->id()));
  EXPECT_FALSE(verifyFunction(F).empty());
}

TEST(Verifier, RejectsBranchToErasedBlock) {
  Function F("f");
  BasicBlock *BB = F.addBlock("entry");
  BasicBlock *T = F.addBlock("t");
  T->Insts.push_back(Instruction::makeRet());
  BB->Insts.push_back(Instruction::makeBr(T->id()));
  F.eraseBlock(T->id());
  EXPECT_FALSE(verifyFunction(F).empty());
}

TEST(Verifier, SSAModeCatchesDoubleDef) {
  Function F("f");
  IRBuilder B(F, F.addBlock("entry"));
  Reg C = B.loadI(1);
  B.emit(Instruction::makeLoadI(C, 2)); // second def of C
  B.ret(C);
  EXPECT_TRUE(verifyFunction(F, SSAMode::Relaxed).empty());
  EXPECT_FALSE(verifyFunction(F, SSAMode::SSA).empty());
}

TEST(Verifier, NoSSAModeRejectsPhis) {
  Function F("f");
  BasicBlock *BB = F.addBlock("entry");
  Instruction Phi = Instruction::makePhi(Type::I64, F.makeReg(Type::I64));
  BB->Insts.push_back(std::move(Phi));
  BB->Insts.push_back(Instruction::makeRet());
  EXPECT_FALSE(verifyFunction(F, SSAMode::NoSSA).empty());
}

TEST(Verifier, PhiPredsMustMatchCFG) {
  Function F("f");
  Reg P = F.addParam(Type::I64);
  BasicBlock *A = F.addBlock("a");
  BasicBlock *Join = F.addBlock("j");
  A->Insts.push_back(Instruction::makeBr(Join->id()));
  Instruction Phi = Instruction::makePhi(Type::I64, F.makeReg(Type::I64));
  Phi.addPhiIncoming(P, A->id());
  Phi.addPhiIncoming(P, A->id()); // duplicate entry; only one edge exists
  Join->Insts.push_back(std::move(Phi));
  Join->Insts.push_back(Instruction::makeRet());
  EXPECT_FALSE(verifyFunction(F, SSAMode::SSA).empty());
}

} // namespace
