//===- tests/frontend_test.cpp - Mini-FORTRAN parser and lowering ---------===//

#include "frontend/Lower.h"
#include "frontend/Parser.h"
#include "interp/Interpreter.h"
#include "ir/ExprKey.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

using namespace epre;

namespace {

Function *lower(const char *Src, NamingMode NM, LowerResult &LR,
                const char *Name) {
  LR = compileMiniFortran(Src, NM);
  EXPECT_TRUE(LR.ok()) << LR.Error;
  if (!LR.ok())
    return nullptr;
  Function *F = LR.M->find(Name);
  EXPECT_NE(F, nullptr);
  if (F) {
    std::vector<std::string> E = verifyFunction(*F, SSAMode::NoSSA);
    EXPECT_TRUE(E.empty()) << E.front() << "\n" << printFunction(*F);
  }
  return F;
}

double runF(Function &F, std::vector<RtValue> Args, size_t MemBytes = 0) {
  MemoryImage Mem(MemBytes);
  ExecResult R = interpret(F, Args, Mem);
  EXPECT_TRUE(R.ok()) << R.TrapReason;
  return R.HasReturn && R.ReturnValue.isF() ? R.ReturnValue.F
                                            : double(R.ReturnValue.I);
}

TEST(Frontend, ImplicitTyping) {
  EXPECT_EQ(ast::implicitType("i"), ast::SrcType::Integer);
  EXPECT_EQ(ast::implicitType("n42"), ast::SrcType::Integer);
  EXPECT_EQ(ast::implicitType("index"), ast::SrcType::Integer);
  EXPECT_EQ(ast::implicitType("x"), ast::SrcType::Real);
  EXPECT_EQ(ast::implicitType("a"), ast::SrcType::Real);
  EXPECT_EQ(ast::implicitType("h2o"), ast::SrcType::Real);
}

TEST(Frontend, ArithmeticAndPrecedence) {
  LowerResult LR;
  Function *F = lower(R"(
function prec(a, b)
  real a, b
  return a + b * 2.0 - a / b ** 2.0
end
)",
                      NamingMode::Naive, LR, "prec");
  ASSERT_NE(F, nullptr);
  double A = 3.0, B = 2.0;
  EXPECT_DOUBLE_EQ(runF(*F, {RtValue::ofF(A), RtValue::ofF(B)}),
                   A + B * 2.0 - A / std::pow(B, 2.0));
}

TEST(Frontend, IntegerDivisionTruncates) {
  LowerResult LR;
  Function *F = lower(R"(
function idiv(i, j)
  idiv = i / j
  return
end
)",
                      NamingMode::Naive, LR, "idiv");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(runF(*F, {RtValue::ofI(7), RtValue::ofI(2)}), 3.0);
  EXPECT_EQ(runF(*F, {RtValue::ofI(-7), RtValue::ofI(2)}), -3.0);
}

TEST(Frontend, MixedTypePromotion) {
  LowerResult LR;
  Function *F = lower(R"(
function mixed(i, x)
  real x, mixed
  mixed = i / 2 + x
  return
end
)",
                      NamingMode::Naive, LR, "mixed");
  ASSERT_NE(F, nullptr);
  // i/2 in integer arithmetic, then promoted.
  EXPECT_EQ(runF(*F, {RtValue::ofI(7), RtValue::ofF(0.5)}), 3.5);
}

TEST(Frontend, DoLoopSemantics) {
  const char *Src = R"(
function trip(lo, hi, n)
  integer lo, hi, n
  n = 0
  do i = lo, hi
    n = n + 1
  end do
  return n
end
)";
  LowerResult LR;
  Function *F = lower(Src, NamingMode::Naive, LR, "trip");
  ASSERT_NE(F, nullptr);
  auto Trip = [&](int64_t Lo, int64_t Hi) {
    return runF(*F, {RtValue::ofI(Lo), RtValue::ofI(Hi), RtValue::ofI(0)});
  };
  EXPECT_EQ(Trip(1, 10), 10.0);
  EXPECT_EQ(Trip(5, 5), 1.0);
  EXPECT_EQ(Trip(6, 5), 0.0); // zero-trip loop
}

TEST(Frontend, DoLoopNegativeStep) {
  const char *Src = R"(
function down(n)
  integer n
  ksum = 0
  do i = n, 1, -1
    ksum = ksum + i
  end do
  return ksum
end
)";
  LowerResult LR;
  Function *F = lower(Src, NamingMode::Naive, LR, "down");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(runF(*F, {RtValue::ofI(4)}), 10.0);
  EXPECT_EQ(runF(*F, {RtValue::ofI(0)}), 0.0);
}

TEST(Frontend, WhileAndLogicalOps) {
  const char *Src = R"(
function wl(n)
  integer n, i
  i = 0
  k = 0
  while (i .lt. n .and. .not. (i .eq. 7))
    i = i + 1
    k = k + 2
  end while
  return k
end
)";
  LowerResult LR;
  Function *F = lower(Src, NamingMode::Naive, LR, "wl");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(runF(*F, {RtValue::ofI(5)}), 10.0);
  EXPECT_EQ(runF(*F, {RtValue::ofI(20)}), 14.0); // stops at i == 7
}

TEST(Frontend, TwoDArrayColumnMajor) {
  const char *Src = R"(
function colmaj(n)
  integer n
  real a(4,4)
  do j = 1, n
    do i = 1, n
      a(i,j) = i * 10 + j
    end do
  end do
  return a(2,3)
end
)";
  LowerResult LR;
  Function *F = lower(Src, NamingMode::Naive, LR, "colmaj");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(runF(*F, {RtValue::ofI(4)}, LR.Routines[0].LocalMemBytes),
            23.0);
  // Array info recorded for the driver.
  ASSERT_TRUE(LR.Routines[0].Arrays.count("a"));
  EXPECT_EQ(LR.Routines[0].Arrays.at("a").Dims.size(), 2u);
  EXPECT_EQ(LR.Routines[0].LocalMemBytes, 16u * 8u);
}

TEST(Frontend, ParamArrayIsBaseAddress) {
  const char *Src = R"(
function psum(n, v)
  integer n
  real v(100)
  s = 0.0
  do i = 1, n
    s = s + v(i)
  end do
  return s
end
)";
  LowerResult LR;
  Function *F = lower(Src, NamingMode::Naive, LR, "psum");
  ASSERT_NE(F, nullptr);
  ASSERT_EQ(F->params().size(), 2u);
  EXPECT_EQ(F->regType(F->params()[1]), Type::I64); // base address
  MemoryImage Mem(0);
  int64_t Base = Mem.allocate(5 * 8);
  for (int I = 0; I < 5; ++I)
    Mem.storeF64(Base + I * 8, I + 1.0);
  ExecResult R =
      interpret(*F, {RtValue::ofI(5), RtValue::ofI(Base)}, Mem);
  ASSERT_TRUE(R.ok()) << R.TrapReason;
  EXPECT_EQ(R.ReturnValue.F, 15.0);
}

TEST(Frontend, HashedNamingGivesLexicalIdentity) {
  // In the §2.2 discipline, the two occurrences of a+b must share one
  // destination register, and variables receive values only via copies.
  const char *Src = R"(
function hx(a, b)
  x = a + b
  y = a + b
  return x * y
end
)";
  LowerResult LR;
  Function *F = lower(Src, NamingMode::Hashed, LR, "hx");
  ASSERT_NE(F, nullptr);
  std::map<uint64_t, Reg> SeenAdd;
  unsigned AddCount = 0;
  Reg AddDst = NoReg;
  bool Consistent = true;
  F->forEachBlock([&](const BasicBlock &B) {
    for (const Instruction &I : B.Insts) {
      if (I.Op != Opcode::Add)
        continue;
      ++AddCount;
      if (AddDst == NoReg)
        AddDst = I.Dst;
      else
        Consistent &= AddDst == I.Dst;
    }
  });
  EXPECT_EQ(AddCount, 2u);
  EXPECT_TRUE(Consistent);
  // Assignments to x and y are copies.
  unsigned Copies = 0;
  F->forEachBlock([&](const BasicBlock &B) {
    for (const Instruction &I : B.Insts)
      Copies += I.isCopy();
  });
  EXPECT_GE(Copies, 2u);
}

TEST(Frontend, NaiveNamingAssignsDirectly) {
  const char *Src = R"(
function nv(a, b)
  x = a + b
  return x
end
)";
  LowerResult LR;
  Function *F = lower(Src, NamingMode::Naive, LR, "nv");
  ASSERT_NE(F, nullptr);
  // Figure 3 shape: the add targets the variable; no copy.
  unsigned Copies = 0;
  F->forEachBlock([&](const BasicBlock &B) {
    for (const Instruction &I : B.Insts)
      Copies += I.isCopy();
  });
  EXPECT_EQ(Copies, 0u);
}

TEST(Frontend, IntrinsicsLower) {
  const char *Src = R"(
function intr(x, i)
  real x, intr
  integer i
  a = sqrt(x) + abs(0.0 - x) + sin(x) * cos(x) + exp(x) - log(x)
  a = a + min(x, 2.0) + max(x, 2.0) + sign(3.0, 0.0 - x)
  k = mod(i, 3) + iabs(0 - i) + int(x)
  return a + real(k)
end
)";
  LowerResult LR;
  Function *F = lower(Src, NamingMode::Naive, LR, "intr");
  ASSERT_NE(F, nullptr);
  double X = 2.5;
  int64_t I = 7;
  double A = std::sqrt(X) + std::fabs(-X) + std::sin(X) * std::cos(X) +
             std::exp(X) - std::log(X);
  A += std::min(X, 2.0) + std::max(X, 2.0) + (-3.0);
  int64_t K = I % 3 + I + int64_t(X);
  EXPECT_DOUBLE_EQ(runF(*F, {RtValue::ofF(X), RtValue::ofI(I)}),
                   A + double(K));
}

TEST(Frontend, ErrorMessages) {
  EXPECT_NE(compileMiniFortran("function f(\n", NamingMode::Naive)
                .Error.find("line"),
            std::string::npos);
  EXPECT_FALSE(
      compileMiniFortran("function f(a)\n  return q(1)\nend\n",
                         NamingMode::Naive)
          .ok()); // unknown array/intrinsic
  EXPECT_FALSE(compileMiniFortran(
                   "function f(a)\n  real a(2,2)\n  return a(1)\nend\n",
                   NamingMode::Naive)
                   .ok()); // wrong subscript count
  EXPECT_FALSE(compileMiniFortran(
                   "function f(a)\n  do i = 1, 10, 0\n  end do\nend\n",
                   NamingMode::Naive)
                   .ok()); // zero step
}

TEST(Frontend, FunctionNameAsResultVariable) {
  const char *Src = R"(
function acc(n)
  integer n
  acc = 0.0
  do i = 1, n
    acc = acc + 1.5
  end do
  return
end
)";
  LowerResult LR;
  Function *F = lower(Src, NamingMode::Naive, LR, "acc");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(runF(*F, {RtValue::ofI(4)}), 6.0);
}

} // namespace
