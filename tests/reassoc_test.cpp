//===- tests/reassoc_test.cpp - Ranks, forward prop, reassociation --------===//

#include "analysis/CFG.h"
#include "interp/Interpreter.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "reassoc/ForwardProp.h"
#include "reassoc/Ranks.h"
#include "reassoc/Reassociate.h"
#include "ssa/SSA.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <set>

using namespace epre;
using epre::test::runPass;
using epre::test::runPassStat;

namespace {

std::unique_ptr<Module> parse(const char *Src) {
  ParseResult R = parseModule(Src);
  EXPECT_TRUE(R.ok()) << R.Error;
  return std::move(R.M);
}

// The paper's rank rules: constants rank 0, parameters rank 1 (the entry
// block's rank), loop phis/loads get the loop block's rank, expressions
// take the max of their operands.
TEST(Ranks, ComputedOnSSA) {
  auto M = parse(R"(
func @f(%p:f64, %q:i64) -> f64 {
^e:
  %c:f64 = loadf 2.5
  %inv:f64 = add %p, %c
  br ^l
^l:
  %v:f64 = phi [%c, ^e], [%w, ^l]
  %w:f64 = add %v, %inv
  %m:f64 = load %q
  %mm:f64 = add %m, %w
  %t:i64 = loadi 1
  cbr %t, ^l, ^x
^x:
  ret %w
}
)");
  Function &F = *M->Functions[0];
  CFG G = CFG::compute(F);
  RankMap Ranks = RankMap::compute(F, G);
  const BasicBlock *E = F.block(0);
  const BasicBlock *L = F.block(1);
  unsigned EntryRank = Ranks.blockRank(0);
  unsigned LoopRank = Ranks.blockRank(1);
  EXPECT_EQ(EntryRank, 1u);
  EXPECT_GT(LoopRank, EntryRank);

  EXPECT_EQ(Ranks.rank(F.params()[0]), EntryRank);     // parameter
  EXPECT_EQ(Ranks.rank(E->Insts[0].Dst), 0u);          // constant
  EXPECT_EQ(Ranks.rank(E->Insts[1].Dst), EntryRank);   // p + c
  EXPECT_EQ(Ranks.rank(L->Insts[0].Dst), LoopRank);    // phi
  EXPECT_EQ(Ranks.rank(L->Insts[1].Dst), LoopRank);    // loop-variant add
  EXPECT_EQ(Ranks.rank(L->Insts[2].Dst), LoopRank);    // load
  EXPECT_EQ(Ranks.rank(L->Insts[4].Dst), 0u);          // loadi in loop
}

TEST(ForwardProp, LocalizesExpressionsAndRemovesPhis) {
  auto M = parse(R"(
func @f(%a:i64, %n:i64) -> i64 {
^e:
  %z:i64 = loadi 0
  br ^l
^l:
  %s:i64 = phi [%z, ^e], [%s2, ^l]
  %i:i64 = phi [%z, ^e], [%i2, ^l]
  %t:i64 = add %a, %i
  %s2:i64 = add %s, %t
  %one:i64 = loadi 1
  %i2:i64 = add %i, %one
  %c:i64 = cmplt %i2, %n
  cbr %c, ^l, ^x
^x:
  ret %s2
}
)");
  Function &F = *M->Functions[0]; // hand-written SSA
  CFG G = CFG::compute(F);
  RankMap Ranks = RankMap::compute(F, G);
  ForwardPropStats S = runPass(F, ForwardPropPass(Ranks)).lastStats();
  EXPECT_TRUE(verifyFunction(F, SSAMode::NoSSA).empty())
      << printFunction(F);
  EXPECT_GT(S.PhisRemoved, 0u);
  EXPECT_GE(S.OpsAfter, S.OpsBefore); // duplication, not shrinkage

  // The §5.1 property: every use of an expression result is preceded by a
  // definition in the same block.
  F.forEachBlock([&](const BasicBlock &B) {
    std::set<Reg> Defined;
    std::set<Reg> ExprDefs;
    F.forEachBlock([&](const BasicBlock &BB) {
      for (const Instruction &I : BB.Insts)
        if (I.hasDst() && I.isExpression())
          ExprDefs.insert(I.Dst);
    });
    for (const Instruction &I : B.Insts) {
      for (Reg Op : I.Operands) {
        if (ExprDefs.count(Op)) {
          EXPECT_TRUE(Defined.count(Op))
              << "expression %r" << Op << " used in ^" << B.label()
              << " without local def\n"
              << printFunction(F);
        }
      }
      if (I.hasDst())
        Defined.insert(I.Dst);
    }
  });
}

TEST(ForwardProp, PreservesBehaviour) {
  const char *Src = R"(
func @f(%a:i64, %n:i64) -> i64 {
^e:
  %z:i64 = loadi 0
  br ^l
^l:
  %s:i64 = phi [%z, ^e], [%s2, ^l]
  %i:i64 = phi [%z, ^e], [%i2, ^l]
  %t:i64 = mul %a, %i
  %s2:i64 = add %s, %t
  %one:i64 = loadi 1
  %i2:i64 = add %i, %one
  %c:i64 = cmplt %i2, %n
  cbr %c, ^l, ^x
^x:
  ret %s2
}
)";
  for (int64_t N : {1, 2, 10}) {
    auto M = parse(Src);
    Function &F = *M->Functions[0];
    MemoryImage Mem(0);
    int64_t Before =
        interpret(F, {RtValue::ofI(3), RtValue::ofI(N)}, Mem).ReturnValue.I;
    CFG G = CFG::compute(F);
    RankMap Ranks = RankMap::compute(F, G);
    runPass(F, ForwardPropPass(Ranks));
    int64_t After =
        interpret(F, {RtValue::ofI(3), RtValue::ofI(N)}, Mem).ReturnValue.I;
    EXPECT_EQ(Before, After) << "N=" << N;
  }
}

TEST(NormalizeNegation, RewritesSubToAddNeg) {
  auto M = parse(R"(
func @f(%a:i64, %b:i64) -> i64 {
^e:
  %d:i64 = sub %a, %b
  ret %d
}
)");
  Function &F = *M->Functions[0];
  RankMap Ranks;
  Ranks.setRank(F.params()[0], 1);
  Ranks.setRank(F.params()[1], 1);
  ReassociateOptions RO;
  unsigned N = unsigned(runPassStat(F, "rewritten", NegNormPass(Ranks, RO)));
  EXPECT_EQ(N, 1u);
  const BasicBlock *E = F.entry();
  ASSERT_EQ(E->Insts.size(), 3u);
  EXPECT_EQ(E->Insts[0].Op, Opcode::Neg);
  EXPECT_EQ(E->Insts[1].Op, Opcode::Add);
  EXPECT_TRUE(verifyFunction(F).empty());
  MemoryImage Mem(0);
  EXPECT_EQ(interpret(F, {RtValue::ofI(10), RtValue::ofI(4)}, Mem)
                .ReturnValue.I,
            6);
}

TEST(Reassociate, SortsByRank) {
  // (((v + a) + c1) + c2): constants must sort to the front, the parameter
  // next, the "variant" v last.
  auto M = parse(R"(
func @f(%a:i64, %v:i64) -> i64 {
^e:
  %c1:i64 = loadi 10
  %c2:i64 = loadi 20
  %t1:i64 = add %v, %a
  %t2:i64 = add %t1, %c1
  %t3:i64 = add %t2, %c2
  ret %t3
}
)");
  Function &F = *M->Functions[0];
  RankMap Ranks;
  Ranks.setRank(F.params()[0], 1); // a: rank 1
  Ranks.setRank(F.params()[1], 5); // v: pretend loop-variant
  const BasicBlock *E = F.entry();
  Ranks.setRank(E->Insts[0].Dst, 0);
  Ranks.setRank(E->Insts[1].Dst, 0);
  Ranks.setRank(E->Insts[2].Dst, 5);
  Ranks.setRank(E->Insts[3].Dst, 5);
  Ranks.setRank(E->Insts[4].Dst, 5);

  ReassociateOptions RO;
  EXPECT_TRUE(runPassStat(F, "changed", ReassociatePass(Ranks, RO)));
  // First add must combine the two constants.
  const Instruction *FirstAdd = nullptr;
  for (const Instruction &I : F.entry()->Insts)
    if (I.Op == Opcode::Add) {
      FirstAdd = &I;
      break;
    }
  ASSERT_NE(FirstAdd, nullptr);
  EXPECT_EQ(Ranks.rank(FirstAdd->Operands[0]), 0u);
  EXPECT_EQ(Ranks.rank(FirstAdd->Operands[1]), 0u);
  MemoryImage Mem(0);
  EXPECT_EQ(interpret(F, {RtValue::ofI(100), RtValue::ofI(1000)}, Mem)
                .ReturnValue.I,
            1130);
}

TEST(Reassociate, RespectsNonAssociativeOps) {
  auto M = parse(R"(
func @f(%a:i64, %b:i64) -> i64 {
^e:
  %t1:i64 = shl %a, %b
  %t2:i64 = shl %t1, %b
  ret %t2
}
)");
  Function &F = *M->Functions[0];
  RankMap Ranks;
  Ranks.setRank(F.params()[0], 2);
  Ranks.setRank(F.params()[1], 1);
  for (const Instruction &I : F.entry()->Insts)
    if (I.hasDst())
      Ranks.setRank(I.Dst, 2);
  ReassociateOptions RO;
  EXPECT_FALSE(runPassStat(F, "changed", ReassociatePass(Ranks, RO)));   // shifts are untouchable
}

TEST(Reassociate, FPGatedByOption) {
  const char *Src = R"(
func @f(%a:f64, %v:f64) -> f64 {
^e:
  %t1:f64 = add %v, %a
  %t2:f64 = add %t1, %a
  ret %t2
}
)";
  auto Setup = [&](Function &F, RankMap &Ranks) {
    Ranks.setRank(F.params()[0], 1);
    Ranks.setRank(F.params()[1], 5);
    for (const Instruction &I : F.entry()->Insts)
      if (I.hasDst())
        Ranks.setRank(I.Dst, 5);
  };
  auto M1 = parse(Src);
  RankMap R1;
  Setup(*M1->Functions[0], R1);
  ReassociateOptions NoFP;
  NoFP.AllowFPReassoc = false;
  EXPECT_FALSE(runPassStat(*M1->Functions[0], "changed", ReassociatePass(R1, NoFP)));

  auto M2 = parse(Src);
  RankMap R2;
  Setup(*M2->Functions[0], R2);
  ReassociateOptions FP;
  FP.AllowFPReassoc = true;
  EXPECT_TRUE(runPassStat(*M2->Functions[0], "changed", ReassociatePass(R2, FP)));
}

TEST(Distribute, LowRankMultiplierOverHighRankSum) {
  // w * ((c + d) + e) with ranks w,c,d=1 and e=2 must become
  // w*(c+d) + w*e (the paper's partial-distribution example).
  auto M = parse(R"(
func @f(%w:i64, %c:i64, %d:i64, %e2:i64) -> i64 {
^en:
  %s1:i64 = add %c, %d
  %s2:i64 = add %s1, %e2
  %p:i64 = mul %w, %s2
  ret %p
}
)");
  Function &F = *M->Functions[0];
  RankMap Ranks;
  Ranks.setRank(F.params()[0], 1);
  Ranks.setRank(F.params()[1], 1);
  Ranks.setRank(F.params()[2], 1);
  Ranks.setRank(F.params()[3], 2);
  const BasicBlock *E = F.entry();
  Ranks.setRank(E->Insts[0].Dst, 1);
  Ranks.setRank(E->Insts[1].Dst, 2);
  Ranks.setRank(E->Insts[2].Dst, 2);

  ReassociateOptions RO;
  RO.Distribute = true;
  EXPECT_TRUE(runPassStat(F, "changed", ReassociatePass(Ranks, RO)));
  // Two multiplies now (one per rank group).
  unsigned Muls = 0;
  for (const Instruction &I : F.entry()->Insts)
    Muls += I.Op == Opcode::Mul;
  EXPECT_EQ(Muls, 2u);
  // And a product of rank 1 exists (the hoistable part).
  bool FoundLowMul = false;
  for (const Instruction &I : F.entry()->Insts)
    if (I.Op == Opcode::Mul && Ranks.rank(I.Dst) == 1)
      FoundLowMul = true;
  EXPECT_TRUE(FoundLowMul);
  MemoryImage Mem(0);
  // 3 * (5 + 7 + 11) = 69
  EXPECT_EQ(interpret(F,
                      {RtValue::ofI(3), RtValue::ofI(5), RtValue::ofI(7),
                       RtValue::ofI(11)},
                      Mem)
                .ReturnValue.I,
            69);
}

TEST(Distribute, NoDistributionWithoutRankBenefit) {
  // All operands the same rank: distribution only adds multiplies.
  auto M = parse(R"(
func @f(%w:i64, %c:i64, %d:i64) -> i64 {
^en:
  %s1:i64 = add %c, %d
  %p:i64 = mul %w, %s1
  ret %p
}
)");
  Function &F = *M->Functions[0];
  RankMap Ranks;
  for (Reg P : F.params())
    Ranks.setRank(P, 1);
  const BasicBlock *E = F.entry();
  Ranks.setRank(E->Insts[0].Dst, 1);
  Ranks.setRank(E->Insts[1].Dst, 1);
  ReassociateOptions RO;
  RO.Distribute = true;
  runPass(F, ReassociatePass(Ranks, RO));
  unsigned Muls = 0;
  for (const Instruction &I : F.entry()->Insts)
    Muls += I.Op == Opcode::Mul;
  EXPECT_EQ(Muls, 1u);
}

} // namespace
