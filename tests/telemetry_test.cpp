//===- tests/telemetry_test.cpp - Serving-telemetry tests -----------------===//
///
/// Covers the request-telemetry subsystem bottom-up: the log2-bucket
/// Histogram (boundaries, exact-rank percentiles against a sorted
/// reference, merge algebra, JSON round-trip, concurrent recording), the
/// structured access log's JSONL schema, the `metrics` verb (counter
/// consistency, monotonicity across scrapes), Chrome-trace span nesting
/// (request spans enclosing per-function pass-timer slices), and the
/// replay acceptance shape: one histogram sample per batch-1 request with
/// cache-hit latencies strictly below cache-miss latencies at p50.
///
//===----------------------------------------------------------------------===//

#include "serve/Server.h"
#include "serve/Service.h"
#include "serve/Telemetry.h"
#include "serve/Trace.h"

#include "instrument/Histogram.h"
#include "instrument/JSONReader.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

using namespace epre;

namespace {

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

std::string jsonEscape(std::string_view S) {
  std::string Out;
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

std::string compileDoc(const std::vector<std::string> &Sources) {
  std::string Doc = "{\"v\":1,\"cmd\":\"compile\",\"requests\":[";
  for (size_t I = 0; I < Sources.size(); ++I) {
    if (I)
      Doc += ",";
    Doc += "{\"id\":\"r" + std::to_string(I) +
           "\",\"lang\":\"iloc\",\"source\":\"" + jsonEscape(Sources[I]) +
           "\"}";
  }
  Doc += "]}";
  return Doc;
}

JSONValue parsed(const std::string &Doc) {
  JSONValue V;
  std::string Err;
  EXPECT_TRUE(parseJSON(Doc, V, &Err)) << Err << "\nin: " << Doc;
  return V;
}

const char *SourceA = "func @a() -> i64 {\n"
                      "^e:\n"
                      "  %a:i64 = loadi 2\n"
                      "  %b:i64 = loadi 3\n"
                      "  %c:i64 = add %a, %b\n"
                      "  %d:i64 = add %a, %b\n"
                      "  %p:i64 = mul %c, %d\n"
                      "  ret %p\n"
                      "}\n";

const char *SourceB = "func @b(%x: i64) -> i64 {\n"
                      "^e:\n"
                      "  %t:i64 = mul %x, %x\n"
                      "  %u:i64 = mul %x, %x\n"
                      "  %v:i64 = add %t, %u\n"
                      "  ret %v\n"
                      "}\n";

/// Histogram parsed out of a metrics document, by name.
Histogram histogramFrom(const JSONValue &Metrics, const std::string &Name) {
  const JSONValue *Hs = Metrics.get("histograms");
  EXPECT_NE(Hs, nullptr);
  Histogram H;
  if (Hs)
    if (const JSONValue *V = Hs->get(Name)) {
      std::string Err;
      EXPECT_TRUE(Histogram::fromJSONValue(*V, H, &Err)) << Name << ": "
                                                         << Err;
    }
  return H;
}

uint64_t counterFrom(const JSONValue &Metrics, std::string_view Name) {
  const JSONValue *Cs = Metrics.get("counters");
  return Cs ? Cs->getU64(Name) : 0;
}

JSONValue scrape(CompileService &Svc) {
  return parsed(Svc.handle("{\"v\":1,\"cmd\":\"metrics\"}"));
}

//===----------------------------------------------------------------------===//
// Histogram: boundaries and recording
//===----------------------------------------------------------------------===//

TEST(Histogram, BucketBoundaries) {
  EXPECT_EQ(Histogram::bucketIndex(0), 0u);
  EXPECT_EQ(Histogram::bucketIndex(1), 1u);
  EXPECT_EQ(Histogram::bucketIndex(2), 2u);
  EXPECT_EQ(Histogram::bucketIndex(3), 2u);
  EXPECT_EQ(Histogram::bucketIndex(4), 3u);
  EXPECT_EQ(Histogram::bucketIndex(~uint64_t(0)), 64u);

  EXPECT_EQ(Histogram::bucketLowerBound(0), 0u);
  EXPECT_EQ(Histogram::bucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::bucketUpperBound(64), ~uint64_t(0));
  for (unsigned B = 1; B < Histogram::NumBuckets; ++B) {
    uint64_t Lo = Histogram::bucketLowerBound(B);
    uint64_t Hi = Histogram::bucketUpperBound(B);
    EXPECT_EQ(Lo, uint64_t(1) << (B - 1)) << B;
    EXPECT_LE(Lo, Hi) << B; // bucket 1 is the singleton [1, 1]
    // The bounds land back in their own bucket: boundaries partition the
    // u64 range with no gaps or overlaps.
    EXPECT_EQ(Histogram::bucketIndex(Lo), B);
    EXPECT_EQ(Histogram::bucketIndex(Hi), B);
    EXPECT_EQ(Histogram::bucketUpperBound(B - 1) + 1, Lo) << B;
  }
}

TEST(Histogram, RecordTracksCountSumMinMax) {
  Histogram H;
  for (uint64_t V : {5u, 17u, 3u, 1000u, 0u})
    H.record(V);
  EXPECT_EQ(H.count(), 5u);
  EXPECT_EQ(H.sum(), 5u + 17 + 3 + 1000 + 0);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 1000u);
  EXPECT_EQ(H.bucketCount(Histogram::bucketIndex(0)), 1u);
  EXPECT_EQ(H.bucketCount(Histogram::bucketIndex(1000)), 1u);
}

TEST(Histogram, EmptyAndOneSample) {
  Histogram Empty;
  EXPECT_EQ(Empty.count(), 0u);
  EXPECT_EQ(Empty.min(), 0u);
  EXPECT_EQ(Empty.percentile(0.5), 0u);
  uint64_t Lo = 1, Hi = 1;
  Empty.percentileBounds(0.5, Lo, Hi);
  EXPECT_EQ(Lo, 0u);
  EXPECT_EQ(Hi, 0u);

  // One sample: every percentile is exactly that sample (the min/max clamp
  // collapses the bucket to the point).
  Histogram One;
  One.record(12345);
  for (double Q : {0.01, 0.5, 0.9, 0.99, 1.0})
    EXPECT_EQ(One.percentile(Q), 12345u) << Q;
}

TEST(Histogram, PercentileAgainstSortedReference) {
  // Deterministic pseudo-random values spanning many buckets.
  Histogram H;
  std::vector<uint64_t> Values;
  uint64_t X = 88172645463325252ull;
  for (int I = 0; I < 1000; ++I) {
    X ^= X << 13;
    X ^= X >> 7;
    X ^= X << 17;
    Values.push_back(X % 1000000);
    H.record(Values.back());
  }
  std::sort(Values.begin(), Values.end());
  for (double Q : {0.01, 0.10, 0.50, 0.90, 0.99, 1.0}) {
    size_t Rank = size_t(std::max(1.0, std::ceil(Q * double(Values.size()))));
    uint64_t Ref = Values[Rank - 1];
    uint64_t P = H.percentile(Q);
    // The reported value brackets the true rank sample from above and
    // never exceeds the observed range.
    EXPECT_GE(P, Ref) << Q;
    EXPECT_LE(P, H.max()) << Q;
    // Exact-rank guarantee: at least ceil(Q*N) samples are <= the
    // reported value.
    size_t AtMost = size_t(std::upper_bound(Values.begin(), Values.end(), P) -
                           Values.begin());
    EXPECT_GE(AtMost, Rank) << Q;
  }
}

TEST(Histogram, MergeIsCommutativeAndAssociative) {
  auto Mk = [](uint64_t Seed) {
    Histogram H;
    for (uint64_t I = 0; I < 100; ++I)
      H.record((Seed * 1000003 + I * 7919) % 100000);
    return H;
  };
  Histogram A = Mk(1), B = Mk(2), C = Mk(3);

  Histogram AB = A, BA = B;
  AB.merge(B);
  BA.merge(A);
  EXPECT_TRUE(AB == BA);

  Histogram L = A; // (A + B) + C
  L.merge(B);
  L.merge(C);
  Histogram BC = B; // A + (B + C)
  BC.merge(C);
  Histogram R = A;
  R.merge(BC);
  EXPECT_TRUE(L == R);
  EXPECT_EQ(L.count(), 300u);
  EXPECT_EQ(L.sum(), A.sum() + B.sum() + C.sum());
}

TEST(Histogram, JSONRoundTrip) {
  Histogram H;
  for (uint64_t V : {0u, 1u, 5u, 1000u, 123456u})
    H.record(V);
  JSONValue Doc = parsed(H.toJSON());
  // Derived percentiles are embedded for human readers.
  EXPECT_EQ(Doc.getU64("count"), 5u);
  EXPECT_TRUE(Doc.get("p50") && Doc.get("p99"));

  Histogram Back;
  std::string Err;
  ASSERT_TRUE(Histogram::fromJSONValue(Doc, Back, &Err)) << Err;
  EXPECT_TRUE(H == Back);
  for (double Q : {0.5, 0.9, 0.99})
    EXPECT_EQ(H.percentile(Q), Back.percentile(Q)) << Q;

  Histogram Empty, EmptyBack;
  ASSERT_TRUE(Histogram::fromJSONValue(parsed(Empty.toJSON()), EmptyBack,
                                       &Err))
      << Err;
  EXPECT_TRUE(Empty == EmptyBack);

  // Non-boundary bucket bounds and inconsistent totals are rejected.
  Histogram Bad;
  EXPECT_FALSE(Histogram::fromJSONValue(
      parsed("{\"count\":1,\"sum\":5,\"min\":5,\"max\":5,"
             "\"buckets\":[[6,1]]}"),
      Bad, &Err));
  EXPECT_FALSE(Histogram::fromJSONValue(
      parsed("{\"count\":2,\"sum\":5,\"min\":5,\"max\":5,"
             "\"buckets\":[[7,1]]}"),
      Bad, &Err));
}

TEST(Histogram, ConcurrentRecordingMatchesSerial) {
  ConcurrentHistogram CH;
  Histogram Serial;
  constexpr unsigned Threads = 4, PerThread = 20000;
  for (unsigned T = 0; T < Threads; ++T)
    for (unsigned I = 0; I < PerThread; ++I)
      Serial.record((uint64_t(T) * 2654435761u + I * 40503u) % 1000000);
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T < Threads; ++T)
    Pool.emplace_back([&CH, T] {
      for (unsigned I = 0; I < PerThread; ++I)
        CH.record((uint64_t(T) * 2654435761u + I * 40503u) % 1000000);
    });
  for (std::thread &Th : Pool)
    Th.join();
  EXPECT_TRUE(CH.snapshot() == Serial);
}

//===----------------------------------------------------------------------===//
// Service telemetry: metrics verb, counters, trace IDs
//===----------------------------------------------------------------------===//

TEST(Telemetry, MetricsVerbCountsRequestsAndConditionsHistograms) {
  ServiceConfig Cfg;
  Cfg.Workers = 1;
  CompileService Svc(Cfg);

  JSONValue First = parsed(Svc.handle(compileDoc({SourceA}))); // miss
  JSONValue Second = parsed(Svc.handle(compileDoc({SourceA}))); // hit
  parsed(Svc.handle("{\"v\":1,\"cmd\":\"ping\"}"));

  // Every response carries a 16-hex-digit trace ID, all distinct.
  std::string Id1 = First.getString("trace_id");
  std::string Id2 = Second.getString("trace_id");
  EXPECT_EQ(Id1.size(), 16u);
  EXPECT_EQ(Id2.size(), 16u);
  EXPECT_NE(Id1, Id2);

  JSONValue M = scrape(Svc);
  EXPECT_TRUE(M.get("ok") && M.get("ok")->B);
  EXPECT_GT(M.getU64("uptime_ns"), 0u);
  // The scrape observes itself in flight.
  const JSONValue *Inflight = M.get("inflight");
  ASSERT_NE(Inflight, nullptr);
  EXPECT_EQ(uint64_t(Inflight->Num), 1u);

  // cache.* and serve.* live in one flat counters object, mutually
  // consistent: 2 compile frames, one all-hit and one all-miss.
  EXPECT_EQ(counterFrom(M, "serve.compile_requests"), 2u);
  EXPECT_EQ(counterFrom(M, "serve.hit_requests"), 1u);
  EXPECT_EQ(counterFrom(M, "serve.miss_requests"), 1u);
  EXPECT_EQ(counterFrom(M, "serve.functions"), 2u);
  EXPECT_EQ(counterFrom(M, "cache.hits"), 1u);
  EXPECT_EQ(counterFrom(M, "cache.misses"), 1u);
  EXPECT_EQ(counterFrom(M, "serve.error_requests"), 0u);

  // One end-to-end sample per compile frame; the conditioned histograms
  // partition them.
  EXPECT_EQ(histogramFrom(M, "request_ns").count(), 2u);
  EXPECT_EQ(histogramFrom(M, "request_hit_ns").count(), 1u);
  EXPECT_EQ(histogramFrom(M, "request_miss_ns").count(), 1u);
  EXPECT_EQ(histogramFrom(M, "admit_ns").count(), 2u);
  EXPECT_EQ(histogramFrom(M, "compile_ns").count(), 2u);

  // The -stats-out document is the same schema.
  JSONValue Stats = parsed(Svc.statsJSON());
  EXPECT_EQ(counterFrom(Stats, "cache.hits"), 1u);
  EXPECT_GE(counterFrom(Stats, "serve.requests"),
            counterFrom(M, "serve.compile_requests"));
}

TEST(Telemetry, ScrapesAreMonotone) {
  ServiceConfig Cfg;
  Cfg.Workers = 1;
  CompileService Svc(Cfg);
  Svc.handle(compileDoc({SourceA}));
  JSONValue M1 = scrape(Svc);
  Svc.handle(compileDoc({SourceA}));
  Svc.handle(compileDoc({SourceB}));
  JSONValue M2 = scrape(Svc);

  for (const char *C : {"serve.requests", "serve.compile_requests",
                        "serve.hit_requests", "serve.miss_requests",
                        "cache.hits", "cache.misses"})
    EXPECT_GE(counterFrom(M2, C), counterFrom(M1, C)) << C;
  EXPECT_EQ(counterFrom(M2, "serve.compile_requests"),
            counterFrom(M1, "serve.compile_requests") + 2);
  EXPECT_GT(M2.getU64("uptime_ns"), 0u);
  EXPECT_GE(M2.getU64("uptime_ns"), M1.getU64("uptime_ns"));
  EXPECT_EQ(histogramFrom(M2, "request_ns").count(),
            histogramFrom(M1, "request_ns").count() + 2);
}

TEST(Telemetry, ProtocolAndRequestErrorsAreClassified) {
  ServiceConfig Cfg;
  Cfg.Workers = 1;
  CompileService Svc(Cfg);
  // Malformed frame -> protocol error; bad source -> request error.
  parsed(Svc.handle("this is not json"));
  parsed(Svc.handle(compileDoc({"func @broken("})));
  JSONValue M = scrape(Svc);
  EXPECT_EQ(counterFrom(M, "serve.protocol_errors"), 1u);
  EXPECT_EQ(counterFrom(M, "serve.error_requests"), 1u);
  EXPECT_EQ(counterFrom(M, "serve.request_errors"), 1u);
  // Failed requests never pollute the hit/miss-conditioned histograms.
  EXPECT_EQ(histogramFrom(M, "request_hit_ns").count(), 0u);
  EXPECT_EQ(histogramFrom(M, "request_miss_ns").count(), 0u);
}

TEST(Telemetry, DisabledTelemetryLeavesResponsesBare) {
  ServiceConfig Cfg;
  Cfg.Workers = 1;
  Cfg.Telemetry.Enabled = false;
  CompileService Svc(Cfg);
  JSONValue R = parsed(Svc.handle(compileDoc({SourceA})));
  EXPECT_TRUE(R.get("ok") && R.get("ok")->B);
  EXPECT_EQ(R.get("trace_id"), nullptr);
  JSONValue M = scrape(Svc);
  EXPECT_EQ(counterFrom(M, "serve.requests"), 0u);
  EXPECT_EQ(histogramFrom(M, "request_ns").count(), 0u);
  // The cache is unaffected by the telemetry switch.
  EXPECT_EQ(counterFrom(M, "cache.misses"), 1u);
}

//===----------------------------------------------------------------------===//
// Access log
//===----------------------------------------------------------------------===//

TEST(Telemetry, AccessLogRecordsSchemaRoundTrips) {
  std::string LogPath = "/tmp/epre_telemetry_access_" +
                        std::to_string(::getpid()) + ".jsonl";
  std::remove(LogPath.c_str());
  {
    ServiceConfig Cfg;
    Cfg.Workers = 1;
    Cfg.Telemetry.AccessLogPath = LogPath;
    Cfg.Telemetry.SlowThresholdNs = 1; // everything is "slow": spans inline
    CompileService Svc(Cfg);
    Svc.handle(compileDoc({SourceA, SourceB}), {"unix:conn7", 7});
    Svc.handle(compileDoc({SourceA}));
    Svc.handle(compileDoc({"func @broken("}));
    Svc.handle("{\"v\":1,\"cmd\":\"ping\"}");
  }

  std::ifstream In(LogPath);
  ASSERT_TRUE(In.is_open());
  std::vector<JSONValue> Records;
  std::string Line;
  while (std::getline(In, Line))
    if (!Line.empty())
      Records.push_back(parsed(Line));
  ASSERT_EQ(Records.size(), 4u);

  const JSONValue &Batch = Records[0];
  EXPECT_EQ(Batch.getString("cmd"), "compile");
  EXPECT_EQ(Batch.getString("peer"), "unix:conn7");
  EXPECT_EQ(Batch.getU64("conn"), 7u);
  EXPECT_EQ(Batch.getString("trace_id").size(), 16u);
  EXPECT_EQ(Batch.getU64("batch"), 2u);
  EXPECT_EQ(Batch.getU64("misses"), 2u);
  EXPECT_EQ(Batch.getString("error_class"), "none");
  EXPECT_GT(Batch.getU64("latency_ns"), 0u);
  EXPECT_GT(Batch.getU64("ts_ms"), 0u);
  const JSONValue *Fns = Batch.get("functions");
  ASSERT_TRUE(Fns && Fns->isArray());
  ASSERT_EQ(Fns->Arr.size(), 2u);
  EXPECT_EQ(Fns->Arr[0].getString("name"), "a");
  EXPECT_FALSE(Fns->Arr[0].get("cached")->B);

  // Slow records inline the span tree, request-relative.
  const JSONValue *Spans = Batch.get("spans");
  ASSERT_TRUE(Spans && Spans->isArray());
  std::set<std::string> Names;
  for (const JSONValue &S : *&Spans->Arr)
    Names.insert(S.getString("name"));
  for (const char *Expected : {"request", "parse", "admit", "compile",
                               "respond"})
    EXPECT_TRUE(Names.count(Expected)) << Expected;

  // The repeat of SourceA is an all-hit record.
  EXPECT_EQ(Records[1].getU64("hits"), 1u);
  EXPECT_EQ(Records[1].getU64("misses"), 0u);
  EXPECT_TRUE(Records[1].get("functions")->Arr[0].get("cached")->B);
  EXPECT_EQ(Records[1].getString("peer"), "local");

  EXPECT_EQ(Records[2].getU64("errors"), 1u);
  EXPECT_EQ(Records[2].getString("error_class"), "parse");

  EXPECT_EQ(Records[3].getString("cmd"), "ping");
  EXPECT_EQ(Records[3].getU64("batch"), 0u);

  // Trace IDs are unique across the run.
  std::set<std::string> Ids;
  for (const JSONValue &R : Records)
    Ids.insert(R.getString("trace_id"));
  EXPECT_EQ(Ids.size(), Records.size());

  std::remove(LogPath.c_str());
}

//===----------------------------------------------------------------------===//
// Span collection and the Chrome trace
//===----------------------------------------------------------------------===//

TEST(Telemetry, ChromeTraceNestsPassTimersInsideRequestSpans) {
  ServiceConfig Cfg;
  Cfg.Workers = 1;
  Cfg.Telemetry.CollectSpans = true;
  CompileService Svc(Cfg);
  Svc.handle(compileDoc({SourceA})); // miss: runs the pipeline
  Svc.handle(compileDoc({SourceA})); // hit: request span only

  JSONValue Trace = parsed(Svc.telemetry().chromeTrace());
  const JSONValue *Events = Trace.get("traceEvents");
  ASSERT_TRUE(Events && Events->isArray());

  struct Ev {
    double Ts, Dur;
  };
  std::vector<Ev> Requests, Compiles, Pipelines;
  for (const JSONValue &E : Events->Arr) {
    std::string Name = E.getString("name");
    const JSONValue *Ts = E.get("ts");
    const JSONValue *Dur = E.get("dur");
    ASSERT_TRUE(Ts && Dur);
    Ev V{Ts->Num, Dur->Num};
    if (Name == "request")
      Requests.push_back(V);
    else if (Name == "compile")
      Compiles.push_back(V);
    else if (Name == "pipeline")
      Pipelines.push_back(V);
  }
  EXPECT_EQ(Requests.size(), 2u);
  EXPECT_EQ(Compiles.size(), 2u);
  // One per-function pass-timer tree, nested (by timestamp containment)
  // inside some request's compile span.
  ASSERT_EQ(Pipelines.size(), 1u);
  auto Contains = [](const Ev &Outer, const Ev &Inner) {
    return Inner.Ts >= Outer.Ts &&
           Inner.Ts + Inner.Dur <= Outer.Ts + Outer.Dur;
  };
  bool InsideCompile = false, InsideRequest = false;
  for (const Ev &C : Compiles)
    InsideCompile |= Contains(C, Pipelines[0]);
  for (const Ev &R : Requests)
    InsideRequest |= Contains(R, Pipelines[0]);
  EXPECT_TRUE(InsideCompile);
  EXPECT_TRUE(InsideRequest);
}

TEST(Telemetry, TraceRetentionIsCapped) {
  ServiceConfig Cfg;
  Cfg.Workers = 1;
  Cfg.Telemetry.CollectSpans = true;
  Cfg.Telemetry.MaxTraceSlices = 6; // roughly one request's spans
  CompileService Svc(Cfg);
  for (int I = 0; I < 4; ++I)
    Svc.handle(compileDoc({SourceA}));
  JSONValue Trace = parsed(Svc.telemetry().chromeTrace());
  EXPECT_LE(Trace.get("traceEvents")->Arr.size(), 6u);
  EXPECT_GT(counterFrom(scrape(Svc), "serve.trace_slices_dropped"), 0u);
}

TEST(Telemetry, SpanCollectionPreservesHitIdentity) {
  // Pass timers must not leak into the cached payload: a hit under span
  // collection is still bit-identical per function to the original miss.
  ServiceConfig Cfg;
  Cfg.Workers = 1;
  Cfg.Telemetry.CollectSpans = true;
  CompileService Svc(Cfg);
  JSONValue Miss = parsed(Svc.handle(compileDoc({SourceA})));
  JSONValue Hit = parsed(Svc.handle(compileDoc({SourceA})));
  const JSONValue *MF = Miss.get("responses")->Arr[0].get("functions");
  const JSONValue *HF = Hit.get("responses")->Arr[0].get("functions");
  ASSERT_TRUE(MF && HF);
  EXPECT_EQ(MF->Arr[0].getString("iloc"), HF->Arr[0].getString("iloc"));
  EXPECT_FALSE(MF->Arr[0].get("cached")->B);
  EXPECT_TRUE(HF->Arr[0].get("cached")->B);
}

//===----------------------------------------------------------------------===//
// Replay acceptance: one sample per request, hits faster than misses
//===----------------------------------------------------------------------===//

TEST(Telemetry, ReplayHistogramCountsRequestsAndHitsBeatMisses) {
  ServiceConfig Cfg;
  Cfg.Workers = 1;
  CompileService Svc(Cfg);

  TraceOptions TO;
  TO.Requests = 100;
  TO.DupRatio = 0.9;
  TO.Seed = 42;
  std::vector<std::string> Lines = generateSuiteTrace(TO);
  ASSERT_EQ(Lines.size(), 100u);
  for (const std::string &L : Lines)
    Svc.handle("{\"v\":1,\"cmd\":\"compile\",\"requests\":[" + L + "]}");

  JSONValue M = scrape(Svc);
  Histogram All = histogramFrom(M, "request_ns");
  Histogram Hit = histogramFrom(M, "request_hit_ns");
  Histogram Miss = histogramFrom(M, "request_miss_ns");

  // Batch-1 replay: one histogram sample per request sent.
  EXPECT_EQ(All.count(), 100u);
  EXPECT_EQ(Hit.count() + Miss.count(), 100u);
  EXPECT_EQ(Hit.count(), counterFrom(M, "cache.hits"));
  EXPECT_EQ(Miss.count(), counterFrom(M, "cache.misses"));
  EXPECT_GT(Hit.count(), 0u);
  EXPECT_GT(Miss.count(), 0u);

  // Cache hits skip the pipeline entirely; their median must sit strictly
  // below the miss median.
  EXPECT_LT(Hit.percentile(0.5), Miss.percentile(0.5));
}

//===----------------------------------------------------------------------===//
// Daemon integration: flags, flush, socket metrics
//===----------------------------------------------------------------------===//

int connectTo(const std::string &Path) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

std::string roundTrip(int Fd, const std::string &Doc) {
  std::string Err, Payload;
  EXPECT_TRUE(writeFrame(Fd, Doc, &Err)) << Err;
  EXPECT_EQ(readFrame(Fd, Payload, &Err), FrameStatus::Ok) << Err;
  return Payload;
}

TEST(Daemon, ServesMetricsAndFlushesStatsAndTrace) {
  std::string Base = "/tmp/epre_telemetry_" + std::to_string(::getpid());
  std::string Sock = Base + ".sock";
  std::string Stats = Base + ".stats.json";
  std::string TraceOut = Base + ".trace.json";

  ServerConfig SC;
  SC.SocketPath = Sock;
  SC.StatsOutPath = Stats;
  SC.StatsFlushSeconds = 1;
  SC.TraceOutPath = TraceOut; // implies span collection
  SC.Service.Workers = 2;
  ServeDaemon D(SC);
  std::string Err;
  ASSERT_TRUE(D.start(&Err)) << Err;
  bool RunOk = false;
  std::thread Server([&] { RunOk = D.run(); });

  int Fd = connectTo(Sock);
  ASSERT_GE(Fd, 0);
  parsed(roundTrip(Fd, compileDoc({SourceA})));
  parsed(roundTrip(Fd, compileDoc({SourceA})));
  JSONValue M = parsed(roundTrip(Fd, "{\"v\":1,\"cmd\":\"metrics\"}"));
  EXPECT_TRUE(M.get("ok") && M.get("ok")->B);
  EXPECT_EQ(counterFrom(M, "serve.compile_requests"), 2u);
  EXPECT_EQ(histogramFrom(M, "request_ns").count(), 2u);
  ::close(Fd);

  D.requestStop();
  Server.join();
  EXPECT_TRUE(RunOk);

  // Exit-path flush: both artifacts exist and parse.
  std::ifstream StatsIn(Stats);
  ASSERT_TRUE(StatsIn.is_open());
  std::stringstream SBuf;
  SBuf << StatsIn.rdbuf();
  JSONValue StatsDoc = parsed(SBuf.str());
  EXPECT_EQ(counterFrom(StatsDoc, "serve.compile_requests"), 2u);
  EXPECT_EQ(counterFrom(StatsDoc, "cache.hits"), 1u);

  std::ifstream TraceIn(TraceOut);
  ASSERT_TRUE(TraceIn.is_open());
  std::stringstream TBuf;
  TBuf << TraceIn.rdbuf();
  JSONValue TraceDoc = parsed(TBuf.str());
  bool SawRequest = false, SawPipeline = false;
  for (const JSONValue &E : TraceDoc.get("traceEvents")->Arr) {
    SawRequest |= E.getString("name") == "request";
    SawPipeline |= E.getString("name") == "pipeline";
  }
  EXPECT_TRUE(SawRequest);
  EXPECT_TRUE(SawPipeline);

  std::remove(Stats.c_str());
  std::remove(TraceOut.c_str());
}

} // namespace
