//===- tests/pipeline_test.cpp - Pipeline configuration matrix ------------===//
///
/// Integration tests of pipeline options that the smoke/suite tests don't
/// cover: strategy and FP-reassociation knobs, verification toggles, level
/// monotonicity on a hoisting-friendly workload, module-level driving,
/// and stability (optimizing twice changes nothing the second time).
///
//===----------------------------------------------------------------------===//

#include "frontend/Lower.h"
#include "interp/Interpreter.h"
#include "ir/IRPrinter.h"
#include "pipeline/Pipeline.h"

#include <gtest/gtest.h>

using namespace epre;

namespace {

const char *Workload = R"(
function work(a, b, n)
  integer n
  real w(32)
  do i = 1, n
    w(i) = (a + b) * i + (a + b)
  end do
  s = 0.0
  do i = 1, n
    s = s + w(i) * (a - b)
  end do
  return s
end
)";

struct RunOut {
  double Value = 0;
  uint64_t Ops = 0;
  bool Ok = false;
};

RunOut runWith(const PipelineOptions &PO) {
  NamingMode NM = PO.Level == OptLevel::Partial ? NamingMode::Hashed
                                                : NamingMode::Naive;
  LowerResult LR = compileMiniFortran(Workload, NM);
  EXPECT_TRUE(LR.ok()) << LR.Error;
  RunOut R;
  if (!LR.ok())
    return R;
  Function &F = *LR.M->find("work");
  PipelineOptions Opts = PO;
  optimizeFunction(F, Opts);
  MemoryImage Mem(LR.Routines[0].LocalMemBytes);
  ExecResult E = interpret(
      F, {RtValue::ofF(1.5), RtValue::ofF(0.25), RtValue::ofI(32)}, Mem);
  EXPECT_FALSE(E.Trapped) << E.TrapReason;
  R.Ok = !E.Trapped;
  R.Value = E.ReturnValue.F;
  R.Ops = E.DynOps;
  return R;
}

TEST(Pipeline, LevelsMonotoneOnHoistingWorkload) {
  PipelineOptions PO;
  PO.Level = OptLevel::None;
  RunOut None = runWith(PO);
  PO.Level = OptLevel::Baseline;
  RunOut Base = runWith(PO);
  PO.Level = OptLevel::Partial;
  RunOut Part = runWith(PO);
  PO.Level = OptLevel::Distribution;
  RunOut Dist = runWith(PO);
  ASSERT_TRUE(None.Ok && Base.Ok && Part.Ok && Dist.Ok);
  EXPECT_LE(Base.Ops, None.Ops);
  EXPECT_LT(Part.Ops, Base.Ops);
  EXPECT_LT(Dist.Ops, Part.Ops);
  EXPECT_NEAR(None.Value, Dist.Value, 1e-9 * (1 + std::abs(None.Value)));
}

TEST(Pipeline, StrategiesAllCorrect) {
  for (PREStrategy S : {PREStrategy::LazyCodeMotion,
                        PREStrategy::MorelRenvoise, PREStrategy::GlobalCSE}) {
    PipelineOptions PO;
    PO.Level = OptLevel::Distribution;
    PO.Strategy = S;
    RunOut R = runWith(PO);
    ASSERT_TRUE(R.Ok);
    PipelineOptions Ref;
    Ref.Level = OptLevel::None;
    EXPECT_NEAR(R.Value, runWith(Ref).Value, 1e-9);
  }
}

TEST(Pipeline, NoFPReassocStillSound) {
  PipelineOptions PO;
  PO.Level = OptLevel::Distribution;
  PO.AllowFPReassoc = false;
  RunOut R = runWith(PO);
  ASSERT_TRUE(R.Ok);
  PipelineOptions Ref;
  Ref.Level = OptLevel::None;
  // Without FP reassociation the result must be BIT-exact.
  EXPECT_EQ(R.Value, runWith(Ref).Value);
}

TEST(Pipeline, VerifyOffStillWorks) {
  PipelineOptions PO;
  PO.Level = OptLevel::Distribution;
  PO.Verify = false;
  RunOut R = runWith(PO);
  EXPECT_TRUE(R.Ok);
}

TEST(Pipeline, OptimizeModuleCoversAllFunctions) {
  const char *Two = R"(
function f1(a)
  return a + a
end

function f2(a)
  return a * a
end
)";
  LowerResult LR = compileMiniFortran(Two, NamingMode::Naive);
  ASSERT_TRUE(LR.ok()) << LR.Error;
  PipelineOptions PO;
  PO.Level = OptLevel::Distribution;
  std::vector<PipelineStats> Stats = optimizeModule(*LR.M, PO);
  EXPECT_EQ(Stats.size(), 2u);
  MemoryImage Mem(0);
  EXPECT_EQ(interpret(*LR.M->find("f1"), {RtValue::ofF(3.0)}, Mem)
                .ReturnValue.F,
            6.0);
  EXPECT_EQ(interpret(*LR.M->find("f2"), {RtValue::ofF(3.0)}, Mem)
                .ReturnValue.F,
            9.0);
}

TEST(Pipeline, Idempotent) {
  // Running the strongest level twice must not change behaviour, and the
  // second run must not blow the code back up.
  LowerResult LR = compileMiniFortran(Workload, NamingMode::Naive);
  ASSERT_TRUE(LR.ok());
  Function &F = *LR.M->find("work");
  PipelineOptions PO;
  PO.Level = OptLevel::Distribution;
  optimizeFunction(F, PO);
  unsigned OpsAfterFirst = F.staticOperationCount();
  optimizeFunction(F, PO);
  unsigned OpsAfterSecond = F.staticOperationCount();
  EXPECT_LE(OpsAfterSecond, OpsAfterFirst + OpsAfterFirst / 4);
  MemoryImage Mem(LR.Routines[0].LocalMemBytes);
  ExecResult E = interpret(
      F, {RtValue::ofF(1.5), RtValue::ofF(0.25), RtValue::ofI(32)}, Mem);
  EXPECT_FALSE(E.Trapped) << E.TrapReason;
}

TEST(Pipeline, StatsArePopulated) {
  LowerResult LR = compileMiniFortran(Workload, NamingMode::Naive);
  ASSERT_TRUE(LR.ok());
  Function &F = *LR.M->find("work");
  PipelineOptions PO;
  PO.Level = OptLevel::Distribution;
  PipelineStats S = optimizeFunction(F, PO);
  EXPECT_GT(S.opsBefore(), 0u);
  EXPECT_GT(S.opsAfter(), 0u);
  EXPECT_GT(S.phisRemoved(), 0u);
  EXPECT_GT(S.gvnClasses(), 0u);
  EXPECT_GT(S.preUniverse(), 0u);
  EXPECT_GT(S.preDeleted(), 0u);
}

TEST(Pipeline, InvertedComparisonNormalized) {
  // .not. (i .lt. n) must become i .ge. n (one op, not cmp+xor).
  const char *Src = R"(
function inv(i, n)
  integer i, n, inv
  if (.not. (i .lt. n)) then
    inv = 1
  else
    inv = 0
  end if
  return
end
)";
  LowerResult LR = compileMiniFortran(Src, NamingMode::Naive);
  ASSERT_TRUE(LR.ok()) << LR.Error;
  Function &F = *LR.M->find("inv");
  PipelineOptions PO;
  PO.Level = OptLevel::Baseline;
  optimizeFunction(F, PO);
  unsigned Xors = 0, Cmps = 0;
  F.forEachBlock([&](const BasicBlock &B) {
    for (const Instruction &I : B.Insts) {
      Xors += I.Op == Opcode::Xor;
      Cmps += isComparison(I.Op);
    }
  });
  EXPECT_EQ(Xors, 0u) << printFunction(F);
  EXPECT_EQ(Cmps, 1u);
  MemoryImage Mem(0);
  EXPECT_EQ(interpret(F, {RtValue::ofI(5), RtValue::ofI(3)}, Mem)
                .ReturnValue.I,
            1);
  EXPECT_EQ(interpret(F, {RtValue::ofI(2), RtValue::ofI(3)}, Mem)
                .ReturnValue.I,
            0);
}

} // namespace
