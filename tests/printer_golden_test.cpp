//===- tests/printer_golden_test.cpp - Exact textual-form goldens ---------===//
///
/// Locks the textual IR format down: builder-constructed programs must
/// print exactly these strings (so the format cannot drift silently), and
/// printing is a bijection with parsing on them.
///
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"

#include <gtest/gtest.h>

using namespace epre;

namespace {

TEST(PrinterGolden, StraightLine) {
  Function F("axpy");
  Reg A = F.addParam(Type::F64);
  Reg X = F.addParam(Type::F64);
  Reg Y = F.addParam(Type::F64);
  F.setReturnType(Type::F64);
  IRBuilder B(F, F.addBlock("entry"));
  Reg P = B.mul(A, X);
  Reg S = B.add(P, Y);
  B.ret(S);

  EXPECT_EQ(printFunction(F),
            "func @axpy(%r1:f64, %r2:f64, %r3:f64) -> f64 {\n"
            "^entry:\n"
            "  %r4:f64 = mul %r1, %r2\n"
            "  %r5:f64 = add %r4, %r3\n"
            "  ret %r5\n"
            "}\n");
}

TEST(PrinterGolden, ControlFlowMemoryAndCalls) {
  Function F("k");
  Reg P = F.addParam(Type::I64);
  Reg Addr = F.addParam(Type::I64);
  F.setReturnType(Type::F64);
  IRBuilder B(F);
  BasicBlock *E = B.makeBlock("e");
  BasicBlock *T = B.makeBlock("t");
  BasicBlock *J = B.makeBlock("j");

  B.setInsertPoint(E);
  Reg V = B.load(Type::F64, Addr);
  B.cbr(P, T, J);

  B.setInsertPoint(T);
  Reg R = B.call(Intrinsic::Sqrt, {V});
  B.store(R, Addr);
  B.br(J);

  B.setInsertPoint(J);
  Reg W = B.load(Type::F64, Addr);
  B.ret(W);

  EXPECT_EQ(printFunction(F),
            "func @k(%r1:i64, %r2:i64) -> f64 {\n"
            "^e:\n"
            "  %r3:f64 = load %r2\n"
            "  cbr %r1, ^t, ^j\n"
            "^t:\n"
            "  %r4:f64 = call sqrt(%r3)\n"
            "  store %r4 -> %r2\n"
            "  br ^j\n"
            "^j:\n"
            "  %r5:f64 = load %r2\n"
            "  ret %r5\n"
            "}\n");
}

TEST(PrinterGolden, PhisAndImmediates) {
  Function F("g");
  Reg P = F.addParam(Type::I64);
  F.setReturnType(Type::I64);
  IRBuilder B(F);
  BasicBlock *E = B.makeBlock("e");
  BasicBlock *A = B.makeBlock("a");
  BasicBlock *J = B.makeBlock("j");

  B.setInsertPoint(E);
  Reg C1 = B.loadI(-7);
  B.cbr(P, A, J);

  B.setInsertPoint(A);
  Reg C2 = B.loadI(9);
  B.br(J);

  B.setInsertPoint(J);
  Reg Phi = F.makeReg(Type::I64);
  Instruction PhiI = Instruction::makePhi(Type::I64, Phi);
  PhiI.addPhiIncoming(C1, E->id());
  PhiI.addPhiIncoming(C2, A->id());
  J->Insts.push_back(std::move(PhiI));
  B.ret(Phi);

  std::string Expected =
      "func @g(%r1:i64) -> i64 {\n"
      "^e:\n"
      "  %r2:i64 = loadi -7\n"
      "  cbr %r1, ^a, ^j\n"
      "^a:\n"
      "  %r3:i64 = loadi 9\n"
      "  br ^j\n"
      "^j:\n"
      "  %r4:i64 = phi [%r2, ^e], [%r3, ^a]\n"
      "  ret %r4\n"
      "}\n";
  EXPECT_EQ(printFunction(F), Expected);

  // And it parses back to the identical text.
  ParseResult R = parseModule(Expected);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(printFunction(*R.M->Functions[0]), Expected);
}

TEST(PrinterGolden, FloatFormatting) {
  Function F("c");
  F.setReturnType(Type::F64);
  IRBuilder B(F, F.addBlock("e"));
  Reg V1 = B.loadF(1.5);
  Reg V2 = B.loadF(0.1);
  Reg S = B.add(V1, V2);
  B.ret(S);
  std::string P = printFunction(F);
  EXPECT_NE(P.find("loadf 1.5\n"), std::string::npos);
  // 0.1 needs all 17 digits to round-trip.
  EXPECT_NE(P.find("loadf 0.10000000000000001\n"), std::string::npos);
}

} // namespace
