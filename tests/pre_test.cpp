//===- tests/pre_test.cpp - Partial redundancy elimination ----------------===//

#include "instrument/Profile.h"
#include "interp/Interpreter.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "pre/PRE.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace epre;
using epre::test::runPass;

namespace {

std::unique_ptr<Module> parse(const char *Src) {
  ParseResult R = parseModule(Src);
  EXPECT_TRUE(R.ok()) << R.Error;
  return std::move(R.M);
}

unsigned countOp(const Function &F, Opcode Op) {
  unsigned N = 0;
  F.forEachBlock([&](const BasicBlock &B) {
    for (const Instruction &I : B.Insts)
      N += I.Op == Op;
  });
  return N;
}

// The paper's §2 example: x+y available on one arm only, recomputed after
// the join. PRE must insert on the other arm's edge and delete the join
// computation — never lengthening any path.
TEST(PRE, ConvertsPartialToFullRedundancy) {
  auto M = parse(R"(
func @f(%p:i64, %x:i64, %y:i64) -> i64 {
^e:
  cbr %p, ^a, ^b
^a:
  %t:i64 = add %x, %y
  %u1:i64 = copy %t
  br ^j
^b:
  %u2:i64 = loadi 5
  br ^j
^j:
  %t:i64 = add %x, %y
  %r:i64 = add %t, %t
  ret %r
}
)");
  Function &F = *M->Functions[0];
  EXPECT_EQ(countOp(F, Opcode::Add), 3u);
  PREStats S = runPass(F, PREPass()).lastStats();
  EXPECT_TRUE(verifyFunction(F, SSAMode::NoSSA).empty())
      << printFunction(F);
  EXPECT_EQ(S.Inserted, 1u);
  EXPECT_EQ(S.Deleted, 1u);
  // Static count of x+y computations is unchanged (one per path)...
  EXPECT_EQ(countOp(F, Opcode::Add), 3u);
  // ...but the ^j block no longer computes it.
  bool JoinComputes = false;
  for (const Instruction &I : F.block(3)->Insts)
    if (I.Op == Opcode::Add && I.Dst != I.Operands[0])
      JoinComputes |= I.Operands[0] == F.params()[1];
  EXPECT_FALSE(JoinComputes);
  // Behaviour identical on both paths.
  MemoryImage Mem(0);
  for (int64_t P : {0, 1}) {
    ExecResult R = interpret(
        F, {RtValue::ofI(P), RtValue::ofI(3), RtValue::ofI(4)}, Mem);
    ASSERT_TRUE(R.ok());
    EXPECT_EQ(R.ReturnValue.I, 14);
  }
}

TEST(PRE, HoistsLoopInvariant) {
  auto M = parse(R"(
func @f(%x:i64, %y:i64, %n:i64) -> i64 {
^e:
  %z:i64 = loadi 0
  %s:i64 = copy %z
  %i:i64 = copy %z
  br ^l
^l:
  %t:i64 = add %x, %y
  %s:i64 = add %s, %t
  %one:i64 = loadi 1
  %i:i64 = add %i, %one
  %c:i64 = cmplt %i, %n
  cbr %c, ^l, ^ex
^ex:
  ret %s
}
)");
  Function &F = *M->Functions[0];
  MemoryImage Mem(0);
  std::vector<RtValue> Args = {RtValue::ofI(3), RtValue::ofI(4),
                               RtValue::ofI(50)};
  uint64_t OpsBefore = interpret(F, Args, Mem).DynOps;
  int64_t ValBefore = interpret(F, Args, Mem).ReturnValue.I;

  PREStats S{};
  for (int I = 0; I < 4; ++I) {
    PREStats T = runPass(F, PREPass()).lastStats();
    S.Inserted += T.Inserted;
    S.Deleted += T.Deleted;
    if (!T.Inserted && !T.Deleted)
      break;
  }
  EXPECT_TRUE(verifyFunction(F, SSAMode::NoSSA).empty());
  EXPECT_GT(S.Deleted, 0u);
  ExecResult After = interpret(F, Args, Mem);
  EXPECT_EQ(After.ReturnValue.I, ValBefore);
  EXPECT_LT(After.DynOps, OpsBefore); // t and the loadi left the loop
}

TEST(PRE, NeverLengthensAPath) {
  // x+y on one arm only, never after the join: inserting on the other arm
  // would lengthen it. LCM must not insert at all.
  auto M = parse(R"(
func @f(%p:i64, %x:i64, %y:i64) -> i64 {
^e:
  cbr %p, ^a, ^b
^a:
  %t:i64 = add %x, %y
  %u:i64 = copy %t
  br ^j
^b:
  %u:i64 = loadi 0
  br ^j
^j:
  ret %u
}
)");
  Function &F = *M->Functions[0];
  PREStats S = runPass(F, PREPass()).lastStats();
  EXPECT_EQ(S.Inserted, 0u);
  EXPECT_EQ(S.Deleted, 0u);
}

TEST(PRE, LocalCSEWithinBlock) {
  auto M = parse(R"(
func @f(%x:i64, %y:i64) -> i64 {
^e:
  %t:i64 = add %x, %y
  %a:i64 = copy %t
  %t:i64 = add %x, %y
  %b:i64 = copy %t
  %r:i64 = add %a, %b
  ret %r
}
)");
  Function &F = *M->Functions[0];
  PREStats S = runPass(F, PREPass()).lastStats();
  EXPECT_EQ(S.Deleted, 1u);
  MemoryImage Mem(0);
  EXPECT_EQ(
      interpret(F, {RtValue::ofI(1), RtValue::ofI(2)}, Mem).ReturnValue.I,
      6);
}

TEST(PRE, KillsBlockRedundancy) {
  // x+y recomputed after x is redefined: NOT redundant; must stay.
  auto M = parse(R"(
func @f(%x:i64, %y:i64) -> i64 {
^e:
  %t:i64 = add %x, %y
  %a:i64 = copy %t
  %x:i64 = add %x, %a
  %t:i64 = add %x, %y
  ret %t
}
)");
  Function &F = *M->Functions[0];
  PREStats S = runPass(F, PREPass()).lastStats();
  EXPECT_EQ(S.Deleted, 0u);
}

TEST(PRE, UniverseRejectsInconsistentNames) {
  // One register defined by two different expressions: not a §2.2 name.
  auto M = parse(R"(
func @f(%x:i64, %y:i64, %p:i64) -> i64 {
^e:
  cbr %p, ^a, ^b
^a:
  %t:i64 = add %x, %y
  br ^j
^b:
  %t:i64 = mul %x, %y
  br ^j
^j:
  %t2:i64 = add %x, %y
  %r:i64 = add %t, %t2
  ret %r
}
)");
  Function &F = *M->Functions[0];
  PREStats S = runPass(F, PREPass()).lastStats();
  EXPECT_TRUE(verifyFunction(F, SSAMode::NoSSA).empty());
  MemoryImage Mem(0);
  for (int64_t P : {0, 1}) {
    ExecResult R = interpret(
        F, {RtValue::ofI(3), RtValue::ofI(4), RtValue::ofI(P)}, Mem);
    ASSERT_TRUE(R.ok());
    EXPECT_EQ(R.ReturnValue.I, P ? 14 : 19);
  }
  (void)S;
}

TEST(PRE, Sec51FilterDropsCrossBlockNames) {
  auto M = parse(R"(
func @f(%p:i64, %x:i64) -> i64 {
^e:
  %t:i64 = add %x, %x
  cbr %p, ^a, ^j
^a:
  %x:i64 = loadi 100
  %t:i64 = add %x, %x
  br ^j
^j:
  %u:i64 = copy %t
  ret %u
}
)");
  Function &F = *M->Functions[0];
  PREStats S = runPass(F, PREPass()).lastStats();
  EXPECT_GE(S.DroppedUnsafe, 1u);
  // The dangerous name must be untouched on both paths.
  MemoryImage Mem(0);
  EXPECT_EQ(
      interpret(F, {RtValue::ofI(0), RtValue::ofI(7)}, Mem).ReturnValue.I,
      14);
  EXPECT_EQ(
      interpret(F, {RtValue::ofI(1), RtValue::ofI(7)}, Mem).ReturnValue.I,
      200);
}

TEST(PRE, CriticalEdgeInsertionSplits) {
  // Insertion needed on a critical edge: PRE must split it, not push the
  // computation onto the other path.
  auto M = parse(R"(
func @f(%p:i64, %q:i64, %x:i64, %y:i64) -> i64 {
^e:
  cbr %p, ^a, ^j
^a:
  %t:i64 = add %x, %y
  %u:i64 = copy %t
  cbr %q, ^j, ^other
^j:
  %t:i64 = add %x, %y
  %r:i64 = add %t, %t
  ret %r
^other:
  %z:i64 = loadi 0
  ret %z
}
)");
  Function &F = *M->Functions[0];
  unsigned BlocksBefore = 0;
  F.forEachBlock([&](BasicBlock &) { ++BlocksBefore; });
  PREStats S = runPass(F, PREPass()).lastStats();
  EXPECT_TRUE(verifyFunction(F, SSAMode::NoSSA).empty())
      << printFunction(F);
  MemoryImage Mem(0);
  for (int64_t P : {0, 1})
    for (int64_t Q : {0, 1}) {
      ExecResult R = interpret(F,
                               {RtValue::ofI(P), RtValue::ofI(Q),
                                RtValue::ofI(3), RtValue::ofI(4)},
                               Mem);
      ASSERT_TRUE(R.ok());
      int64_t Expect = (P && Q) || !P ? 14 : 0;
      EXPECT_EQ(R.ReturnValue.I, Expect) << P << "," << Q;
    }
  (void)S;
  (void)BlocksBefore;
}

/// All three strategies must preserve semantics on the same programs.
class PREStrategies : public testing::TestWithParam<PREStrategy> {};

TEST_P(PREStrategies, PreserveSemantics) {
  const char *Src = R"(
func @f(%p:i64, %x:i64, %y:i64, %n:i64) -> i64 {
^e:
  %z:i64 = loadi 0
  %s:i64 = copy %z
  %i:i64 = copy %z
  br ^l
^l:
  %t:i64 = add %x, %y
  %s:i64 = add %s, %t
  cbr %p, ^then, ^tail
^then:
  %t:i64 = add %x, %y
  %s:i64 = add %s, %t
  br ^tail
^tail:
  %one:i64 = loadi 1
  %i:i64 = add %i, %one
  %c:i64 = cmplt %i, %n
  cbr %c, ^l, ^ex
^ex:
  ret %s
}
)";
  for (int64_t P : {0, 1}) {
    auto M = parse(Src);
    Function &F = *M->Functions[0];
    MemoryImage Mem(0);
    std::vector<RtValue> Args = {RtValue::ofI(P), RtValue::ofI(3),
                                 RtValue::ofI(4), RtValue::ofI(20)};
    int64_t Before = interpret(F, Args, Mem).ReturnValue.I;
    runPass(F, PREPass(GetParam()));
    EXPECT_TRUE(verifyFunction(F, SSAMode::NoSSA).empty())
        << printFunction(F);
    ExecResult R = interpret(F, Args, Mem);
    ASSERT_TRUE(R.ok());
    EXPECT_EQ(R.ReturnValue.I, Before);
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, PREStrategies,
                         testing::Values(PREStrategy::LazyCodeMotion,
                                         PREStrategy::MorelRenvoise,
                                         PREStrategy::GlobalCSE,
                                         PREStrategy::Speculative),
                         [](const testing::TestParamInfo<PREStrategy> &I) {
                           switch (I.param) {
                           case PREStrategy::LazyCodeMotion:
                             return "LCM";
                           case PREStrategy::MorelRenvoise:
                             return "MorelRenvoise";
                           case PREStrategy::GlobalCSE:
                             return "GlobalCSE";
                           case PREStrategy::Speculative:
                             // No profile attached: must fall back to LCM.
                             return "SpeculativeNoProfile";
                           }
                           return "?";
                         });

TEST(PRE, GlobalCSENeverInserts) {
  auto M = parse(R"(
func @f(%x:i64, %y:i64, %n:i64) -> i64 {
^e:
  %z:i64 = loadi 0
  %s:i64 = copy %z
  %i:i64 = copy %z
  br ^l
^l:
  %t:i64 = add %x, %y
  %s:i64 = add %s, %t
  %one:i64 = loadi 1
  %i:i64 = add %i, %one
  %c:i64 = cmplt %i, %n
  cbr %c, ^l, ^ex
^ex:
  ret %s
}
)");
  Function &F = *M->Functions[0];
  PREStats S = runPass(F, PREPass(PREStrategy::GlobalCSE)).lastStats();
  EXPECT_EQ(S.Inserted, 0u);
}

// --- Speculative (profile-guided) placement --------------------------------

/// x+y computed only on the hot arm of a branch inside the loop. LCM cannot
/// move it (not anticipated at the loop header: the cold arm never computes
/// it), so the hot path pays one add per iteration. The shared source for
/// both speculative tests; OpName selects the hot arm's expression.
std::string branchyLoop(const char *HotExpr) {
  std::string S = R"(
func @f(%p:i64, %x:i64, %y:i64, %n:i64) -> i64 {
^e:
  %z:i64 = loadi 0
  %s:i64 = copy %z
  %i:i64 = copy %z
  br ^l
^l:
  cbr %p, ^hot, ^cold
^hot:
)";
  S += "  ";
  S += HotExpr;
  S += R"(
  %s:i64 = add %s, %t
  br ^lt
^cold:
  %s:i64 = add %s, %i
  br ^lt
^lt:
  %one:i64 = loadi 1
  %i:i64 = add %i, %one
  %c:i64 = cmplt %i, %n
  cbr %c, ^l, ^ex
^ex:
  ret %s
}
)";
  return S;
}

/// A profile of branchyLoop in which the hot arm is taken every iteration
/// and the cold arm never runs.
FunctionProfile hotArmProfile() {
  FunctionProfile FP;
  FP.Function = "f";
  auto Add = [&](const char *L, uint64_t C,
                 std::vector<BlockProfile::Edge> Edges = {}) {
    BlockProfile B;
    B.Label = L;
    B.Count = C;
    B.Edges = std::move(Edges);
    FP.Blocks.push_back(std::move(B));
  };
  Add("e", 1, {{"l", 1}});
  Add("l", 100, {{"hot", 100}, {"cold", 0}});
  Add("hot", 100, {{"lt", 100}});
  Add("cold", 0, {{"lt", 0}});
  Add("lt", 100, {{"l", 99}, {"ex", 1}});
  Add("ex", 1);
  return FP;
}

PREStats runWithProfile(Function &F, PREStrategy Strategy,
                        const FunctionProfile &FP) {
  FunctionAnalysisManager AM(F);
  AM.setProfileSource(&FP);
  StatsRegistry SR;
  PassContext Ctx(&SR);
  PREPass P(Strategy);
  P.run(F, AM, Ctx);
  return P.lastStats();
}

TEST(PRE, SpeculativeHoistsHotPartialRedundancy) {
  std::string Src = branchyLoop("%t:i64 = add %x, %y");
  std::vector<RtValue> Hot = {RtValue::ofI(1), RtValue::ofI(3),
                              RtValue::ofI(4), RtValue::ofI(50)};
  std::vector<RtValue> Cold = {RtValue::ofI(0), RtValue::ofI(3),
                               RtValue::ofI(4), RtValue::ofI(50)};

  // A block still computing x + y locally (params()[1] is %x).
  auto computesXPlusY = [](const Function &Fn, std::string_view Label) {
    bool Found = false;
    Fn.forEachBlock([&](const BasicBlock &B) {
      if (B.label() != Label)
        return;
      for (const Instruction &I : B.Insts)
        Found |= I.Op == Opcode::Add && I.Operands[0] == Fn.params()[1];
    });
    return Found;
  };

  // LCM refuses to move x + y (inserting would lengthen the cold path); it
  // may still hoist the loadi 1, which is anticipated on every path.
  {
    auto M = parse(Src.c_str());
    Function &L = *M->Functions[0];
    runPass(L, PREPass());
    EXPECT_TRUE(computesXPlusY(L, "hot")) << printFunction(L);
  }

  auto M = parse(Src.c_str());
  Function &F = *M->Functions[0];
  MemoryImage Mem(0);
  ExecResult HotBefore = interpret(F, Hot, Mem);
  ExecResult ColdBefore = interpret(F, Cold, Mem);

  FunctionProfile FP = hotArmProfile();
  PREStats S = runWithProfile(F, PREStrategy::Speculative, FP);
  EXPECT_TRUE(verifyFunction(F, SSAMode::NoSSA).empty()) << printFunction(F);
  EXPECT_EQ(S.Speculated, 1u);
  EXPECT_GE(S.Inserted, 1u);
  EXPECT_GE(S.Deleted, 1u);
  EXPECT_FALSE(computesXPlusY(F, "hot")) << printFunction(F);

  // Same results on both arms; the hot run is strictly cheaper because the
  // add left the loop.
  ExecResult HotAfter = interpret(F, Hot, Mem);
  ExecResult ColdAfter = interpret(F, Cold, Mem);
  ASSERT_TRUE(HotAfter.ok());
  ASSERT_TRUE(ColdAfter.ok());
  EXPECT_EQ(HotAfter.ReturnValue.I, HotBefore.ReturnValue.I);
  EXPECT_EQ(ColdAfter.ReturnValue.I, ColdBefore.ReturnValue.I);
  EXPECT_LT(HotAfter.DynOps, HotBefore.DynOps);
}

TEST(PRE, SpeculativeNeverMovesTrappingOps) {
  // Same shape, but the hot arm computes an i64 division by %y. Hoisting it
  // above the branch would introduce a ÷0 trap on runs that stay on the
  // cold arm — speculationSafe must keep it in place no matter what the
  // profile promises.
  std::string Src = branchyLoop("%t:i64 = div %x, %y");
  auto M = parse(Src.c_str());
  Function &F = *M->Functions[0];

  FunctionProfile FP = hotArmProfile();
  PREStats S = runWithProfile(F, PREStrategy::Speculative, FP);
  EXPECT_TRUE(verifyFunction(F, SSAMode::NoSSA).empty()) << printFunction(F);
  EXPECT_EQ(S.Speculated, 0u);
  // The division stays exactly where it was: in ^hot, nowhere else.
  EXPECT_EQ(countOp(F, Opcode::Div), 1u);
  bool DivInHot = false;
  F.forEachBlock([&](const BasicBlock &B) {
    for (const Instruction &I : B.Insts)
      if (I.Op == Opcode::Div)
        DivInHot = B.label() == "hot";
  });
  EXPECT_TRUE(DivInHot) << printFunction(F);

  // Cold-arm run with a zero divisor: still trap-free after the pass.
  MemoryImage Mem(0);
  ExecResult R = interpret(F, {RtValue::ofI(0), RtValue::ofI(3),
                               RtValue::ofI(0), RtValue::ofI(20)},
                           Mem);
  ASSERT_TRUE(R.ok()) << R.TrapReason << "\n" << printFunction(F);
}

} // namespace
