//===- tests/analysis_test.cpp - CFG, dominators, loops, liveness ---------===//

#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "analysis/EdgeSplitting.h"
#include "analysis/Liveness.h"
#include "analysis/LoopInfo.h"
#include "ir/IRParser.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace epre;

namespace {

std::unique_ptr<Module> parse(const char *Src) {
  ParseResult R = parseModule(Src);
  EXPECT_TRUE(R.ok()) << R.Error;
  return std::move(R.M);
}

// A diamond with a self-loop on one arm:
//   e -> a -> j ;  e -> b -> j ;  b -> b
const char *DiamondLoop = R"(
func @f(%p:i64) {
^e:
  cbr %p, ^a, ^b
^a:
  br ^j
^b:
  cbr %p, ^b, ^j
^j:
  ret
}
)";

TEST(CFG, PredsSuccsRPO) {
  auto M = parse(DiamondLoop);
  Function &F = *M->Functions[0];
  CFG G = CFG::compute(F);
  EXPECT_EQ(G.succs(0).size(), 2u);
  EXPECT_EQ(G.preds(0).size(), 0u);
  EXPECT_EQ(G.preds(3).size(), 2u); // j from a and b
  EXPECT_EQ(G.preds(2).size(), 2u); // b from e and itself
  ASSERT_EQ(G.rpo().size(), 4u);
  EXPECT_EQ(G.rpo()[0], 0u);
  // RPO numbers increase along forward edges.
  EXPECT_LT(G.rpoNumber(0), G.rpoNumber(1));
  EXPECT_LT(G.rpoNumber(0), G.rpoNumber(2));
  EXPECT_LT(G.rpoNumber(1), G.rpoNumber(3));
}

TEST(CFG, UnreachableBlocksExcluded) {
  auto M = parse(R"(
func @f() {
^e:
  ret
^dead:
  br ^dead2
^dead2:
  ret
}
)");
  CFG G = CFG::compute(*M->Functions[0]);
  EXPECT_TRUE(G.isReachable(0));
  EXPECT_FALSE(G.isReachable(1));
  EXPECT_FALSE(G.isReachable(2));
  EXPECT_EQ(G.rpo().size(), 1u);
  // Pred lists must not mention unreachable sources.
  EXPECT_TRUE(G.preds(2).empty());
}

TEST(Dominators, DiamondAndLoop) {
  auto M = parse(DiamondLoop);
  Function &F = *M->Functions[0];
  CFG G = CFG::compute(F);
  DominatorTree DT = DominatorTree::compute(F, G);
  // Entry dominates everything.
  for (BlockId B : G.rpo())
    EXPECT_TRUE(DT.dominates(0, B));
  // Neither arm dominates the join.
  EXPECT_FALSE(DT.dominates(1, 3));
  EXPECT_FALSE(DT.dominates(2, 3));
  EXPECT_EQ(DT.idom(3), 0u);
  EXPECT_EQ(DT.idom(1), 0u);
  EXPECT_EQ(DT.idom(2), 0u);
  // Self-dominance is reflexive; strict is not.
  EXPECT_TRUE(DT.dominates(2, 2));
  EXPECT_FALSE(DT.strictlyDominates(2, 2));
}

TEST(Dominators, Frontiers) {
  auto M = parse(DiamondLoop);
  Function &F = *M->Functions[0];
  CFG G = CFG::compute(F);
  DominatorTree DT = DominatorTree::compute(F, G);
  DominanceFrontier DF = DominanceFrontier::compute(F, G, DT);
  // DF(a) = {j}, DF(b) = {b, j} (b is its own frontier via the self loop).
  EXPECT_EQ(DF.frontier(1), std::vector<BlockId>{3});
  std::vector<BlockId> BF = DF.frontier(2);
  std::sort(BF.begin(), BF.end());
  EXPECT_EQ(BF, (std::vector<BlockId>{2, 3}));
  EXPECT_TRUE(DF.frontier(0).empty());
}

TEST(LoopInfo, SelfLoopAndNest) {
  auto M = parse(R"(
func @f(%p:i64) {
^e:
  br ^outer
^outer:
  br ^inner
^inner:
  cbr %p, ^inner, ^latch
^latch:
  cbr %p, ^outer, ^x
^x:
  ret
}
)");
  Function &F = *M->Functions[0];
  CFG G = CFG::compute(F);
  DominatorTree DT = DominatorTree::compute(F, G);
  LoopInfo LI = LoopInfo::compute(F, G, DT);
  ASSERT_EQ(LI.loops().size(), 2u);
  EXPECT_EQ(LI.loopDepth(0), 0u); // entry
  EXPECT_EQ(LI.loopDepth(1), 1u); // outer header
  EXPECT_EQ(LI.loopDepth(2), 2u); // inner
  EXPECT_EQ(LI.loopDepth(3), 1u); // latch
  EXPECT_EQ(LI.loopDepth(4), 0u); // exit
}

TEST(Liveness, StraightLine) {
  auto M = parse(R"(
func @f(%a:i64) -> i64 {
^e:
  %b:i64 = loadi 1
  %c:i64 = add %a, %b
  %d:i64 = add %c, %c
  ret %d
}
)");
  Function &F = *M->Functions[0];
  CFG G = CFG::compute(F);
  Liveness L = Liveness::compute(F, G);
  // Only the parameter is live into the entry block.
  const BitVector &In = L.liveIn(0);
  EXPECT_TRUE(In.test(F.params()[0]));
  EXPECT_EQ(In.count(), 1u);
  EXPECT_TRUE(L.liveOut(0).none());
}

TEST(Liveness, AcrossBranchAndPhi) {
  auto M = parse(R"(
func @f(%p:i64, %x:i64, %y:i64) -> i64 {
^e:
  cbr %p, ^a, ^b
^a:
  %u:i64 = add %x, %x
  br ^j
^b:
  %v:i64 = add %y, %y
  br ^j
^j:
  %w:i64 = phi [%u, ^a], [%v, ^b]
  ret %w
}
)");
  Function &F = *M->Functions[0];
  CFG G = CFG::compute(F);
  Liveness L = Liveness::compute(F, G);
  Reg X = F.params()[1], Y = F.params()[2];
  // x is live into arm a but not arm b.
  EXPECT_TRUE(L.isLiveIn(X, 1));
  EXPECT_FALSE(L.isLiveIn(X, 2));
  EXPECT_TRUE(L.isLiveIn(Y, 2));
  // Phi inputs are live out of their predecessor, not live into the join.
  const BasicBlock *A = F.block(1);
  Reg U = A->Insts[0].Dst;
  EXPECT_TRUE(L.liveOut(1).test(U));
  EXPECT_FALSE(L.liveIn(3).test(U));
}

TEST(EdgeSplitting, SplitsOnlyCriticalEdges) {
  auto M = parse(DiamondLoop);
  Function &F = *M->Functions[0];
  // Critical edges: e->b? e has 2 succs; b has preds {e,b}: critical.
  // b->b: b 2 succs, b 2 preds: critical. b->j: j 2 preds: critical.
  // e->a: a has 1 pred: not critical. a->j: a has 1 succ: not critical.
  unsigned N = splitCriticalEdges(F);
  EXPECT_EQ(N, 3u);
  EXPECT_TRUE(verifyFunction(F).empty());
  // After splitting, no critical edges remain.
  EXPECT_EQ(splitCriticalEdges(F), 0u);
}

TEST(EdgeSplitting, SplitEdgePatchesPhis) {
  auto M = parse(R"(
func @f(%p:i64, %x:i64) -> i64 {
^e:
  cbr %p, ^j, ^b
^b:
  br ^j
^j:
  %w:i64 = phi [%x, ^e], [%p, ^b]
  ret %w
}
)");
  Function &F = *M->Functions[0];
  BasicBlock *Mid = splitEdge(F, 0, 2);
  ASSERT_NE(Mid, nullptr);
  EXPECT_TRUE(verifyFunction(F, SSAMode::Relaxed).empty());
  const Instruction &Phi = F.block(2)->Insts[0];
  // The incoming block for %x is now the split block.
  ASSERT_EQ(Phi.PhiBlocks.size(), 2u);
  EXPECT_EQ(Phi.PhiBlocks[0], Mid->id());
}

} // namespace
