//===- tests/serve_test.cpp - Compile-server unit and integration tests ---===//
///
/// Covers the serve layer bottom-up: ResultCache semantics (content
/// addressing, options fingerprint, LRU byte budget), frame round-trips
/// over a socketpair, request parsing, CompileService batch behavior (the
/// cache-hit-is-bit-identical differential, in-batch dedup, same-name
/// rounds, error isolation), the trace generator, and finally a real
/// ServeDaemon on a Unix-domain socket with concurrent clients.
///
//===----------------------------------------------------------------------===//

#include "serve/Server.h"
#include "serve/Service.h"
#include "serve/Trace.h"

#include "instrument/JSONReader.h"
#include "instrument/Profile.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "support/Hash.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <set>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

using namespace epre;

namespace {

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

std::string jsonEscape(std::string_view S) {
  std::string Out;
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

/// {"v":1,"cmd":"compile","requests":[{"id":...,"lang":"iloc","source":...}]}
std::string compileDoc(const std::vector<std::string> &Sources,
                       const std::string &OptionsJSON = "") {
  std::string Doc = "{\"v\":1,\"cmd\":\"compile\"";
  if (!OptionsJSON.empty())
    Doc += ",\"options\":" + OptionsJSON;
  Doc += ",\"requests\":[";
  for (size_t I = 0; I < Sources.size(); ++I) {
    if (I)
      Doc += ",";
    Doc += "{\"id\":\"r" + std::to_string(I) +
           "\",\"lang\":\"iloc\",\"source\":\"" + jsonEscape(Sources[I]) +
           "\"}";
  }
  Doc += "]}";
  return Doc;
}

/// Deterministic re-serialization of a parsed JSON value (member order is
/// preserved by the parser), so payloads can be compared structurally.
std::string jsonText(const JSONValue &V) {
  switch (V.K) {
  case JSONValue::Null:
    return "null";
  case JSONValue::Bool:
    return V.B ? "true" : "false";
  case JSONValue::Number:
    return V.IsUInt ? std::to_string(V.UInt) : std::to_string(V.Num);
  case JSONValue::String:
    return "\"" + jsonEscape(V.Str) + "\"";
  case JSONValue::Array: {
    std::string S = "[";
    for (size_t I = 0; I < V.Arr.size(); ++I)
      S += (I ? "," : "") + jsonText(V.Arr[I]);
    return S + "]";
  }
  case JSONValue::Object: {
    std::string S = "{";
    for (size_t I = 0; I < V.Obj.size(); ++I)
      S += (I ? "," : "") + ("\"" + jsonEscape(V.Obj[I].first) +
                             "\":" + jsonText(V.Obj[I].second));
    return S + "}";
  }
  }
  return "";
}

JSONValue parsed(const std::string &Doc) {
  JSONValue V;
  std::string Err;
  EXPECT_TRUE(parseJSON(Doc, V, &Err)) << Err << "\nin: " << Doc;
  return V;
}

const JSONValue *firstFunction(const JSONValue &Response, size_t Req = 0) {
  const JSONValue *Rs = Response.get("responses");
  if (!Rs || !Rs->isArray() || Rs->Arr.size() <= Req)
    return nullptr;
  const JSONValue *Fns = Rs->Arr[Req].get("functions");
  if (!Fns || !Fns->isArray() || Fns->Arr.empty())
    return nullptr;
  return &Fns->Arr[0];
}

const char *SourceA = "func @a() -> i64 {\n"
                      "^e:\n"
                      "  %a:i64 = loadi 2\n"
                      "  %b:i64 = loadi 3\n"
                      "  %c:i64 = add %a, %b\n"
                      "  %d:i64 = add %a, %b\n"
                      "  %p:i64 = mul %c, %d\n"
                      "  ret %p\n"
                      "}\n";

const char *SourceB = "func @b(%x: i64) -> i64 {\n"
                      "^e:\n"
                      "  %t:i64 = mul %x, %x\n"
                      "  %u:i64 = mul %x, %x\n"
                      "  %v:i64 = add %t, %u\n"
                      "  ret %v\n"
                      "}\n";

//===----------------------------------------------------------------------===//
// Options fingerprint
//===----------------------------------------------------------------------===//

TEST(OptionsFingerprint, CoversOutputAffectingFields) {
  PipelineOptions Base = serveDefaultOptions();
  uint64_t FP = optionsFingerprint(Base);
  EXPECT_EQ(FP, optionsFingerprint(Base));

  PipelineOptions O = Base;
  O.Level = OptLevel::Baseline;
  EXPECT_NE(optionsFingerprint(O), FP);
  O = Base;
  O.Strategy = PREStrategy::MorelRenvoise;
  EXPECT_NE(optionsFingerprint(O), FP);
  // Every GVN engine gets its own cache key: engines produce different
  // name spaces, so a hit under the wrong engine would be a miscompile.
  for (GVNEngine E : AllGVNEngines) {
    if (E == Base.Engine)
      continue;
    O = Base;
    O.Engine = E;
    EXPECT_NE(optionsFingerprint(O), FP) << gvnEngineName(E);
  }
  O = Base;
  O.AllowFPReassoc = !O.AllowFPReassoc;
  EXPECT_NE(optionsFingerprint(O), FP);
  O = Base;
  O.StrengthReduceMul = !O.StrengthReduceMul;
  EXPECT_NE(optionsFingerprint(O), FP);
  O = Base;
  O.EnableStrengthReduction = !O.EnableStrengthReduction;
  EXPECT_NE(optionsFingerprint(O), FP);
  // The solver changes pre.*_iterations counters in cached stats payloads.
  O = Base;
  O.Solver = DataflowSolverKind::RoundRobin;
  EXPECT_NE(optionsFingerprint(O), FP);
}

/// A one-function, one-block profile document for fingerprint/protocol
/// tests; \p Count varies the content.
ProfileDoc tinyProfile(const char *Fn, uint64_t Count) {
  ProfileDoc D;
  FunctionProfile FP;
  FP.Function = Fn;
  BlockProfile B;
  B.Label = "e";
  B.Count = Count;
  FP.Blocks.push_back(std::move(B));
  D.Profiles.push_back(std::move(FP));
  return D;
}

TEST(OptionsFingerprint, ProfileContentParticipates) {
  PipelineOptions Base = serveDefaultOptions();
  uint64_t NoProfile = optionsFingerprint(Base);

  ProfileDoc D = tinyProfile("f", 10);
  PipelineOptions O = Base;
  O.ProfileIn = &D;
  uint64_t WithProfile = optionsFingerprint(O);
  EXPECT_NE(WithProfile, NoProfile);

  // The fingerprint keys on content, not identity: an equal copy at a
  // different address hashes the same...
  ProfileDoc Copy = D;
  PipelineOptions O2 = Base;
  O2.ProfileIn = &Copy;
  EXPECT_EQ(optionsFingerprint(O2), WithProfile);

  // ...and a single changed count separates the entries.
  Copy.Profiles[0].Blocks[0].Count = 11;
  EXPECT_NE(optionsFingerprint(O2), WithProfile);
}

TEST(OptionsFingerprint, IgnoresObservabilityPlumbing) {
  PipelineOptions Base = serveDefaultOptions();
  PipelineOptions O = Base;
  O.Verify = !O.Verify;
  EXPECT_EQ(optionsFingerprint(O), optionsFingerprint(Base));
  O = Base;
  O.DisableAnalysisCache = !O.DisableAnalysisCache;
  EXPECT_EQ(optionsFingerprint(O), optionsFingerprint(Base));
}

//===----------------------------------------------------------------------===//
// ResultCache
//===----------------------------------------------------------------------===//

CachedFunction entry(const std::string &Name, size_t PayloadBytes = 0) {
  CachedFunction V;
  V.Name = Name;
  V.ILOC = std::string(PayloadBytes, 'x');
  V.RemarksJSON = "[]";
  V.StatsJSON = "{}";
  return V;
}

TEST(ResultCache, MissInsertHit) {
  ResultCache C(1 << 20, 1);
  CachedFunction Out;
  EXPECT_FALSE(C.lookup(1, 2, Out));
  EXPECT_EQ(C.misses(), 1u);

  C.insert(1, 2, entry("f", 10));
  EXPECT_TRUE(C.lookup(1, 2, Out));
  EXPECT_EQ(Out.Name, "f");
  EXPECT_EQ(C.hits(), 1u);
  EXPECT_EQ(C.insertions(), 1u);
  EXPECT_EQ(C.entries(), 1u);
}

TEST(ResultCache, FingerprintMismatchMisses) {
  ResultCache C(1 << 20, 1);
  C.insert(1, 2, entry("f"));
  CachedFunction Out;
  EXPECT_FALSE(C.lookup(1, 3, Out)); // same IR, different options
  EXPECT_FALSE(C.lookup(9, 2, Out)); // different IR, same options
  EXPECT_TRUE(C.lookup(1, 2, Out));
  EXPECT_EQ(C.misses(), 2u);
  EXPECT_EQ(C.hits(), 1u);
}

TEST(ResultCache, LRUEvictionRespectsByteBudget) {
  // One shard so the budget is a single LRU list. Each entry is ~1KiB of
  // payload; a 3-entry budget must hold at most 3 and evict the least
  // recently used one.
  size_t One = entry("e", 1024).byteSize() + 1; // +1: one-char names below
  ResultCache C(3 * One, 1);
  C.insert(1, 0, entry("a", 1024));
  C.insert(2, 0, entry("b", 1024));
  C.insert(3, 0, entry("c", 1024));
  EXPECT_EQ(C.entries(), 3u);
  EXPECT_EQ(C.evictions(), 0u);

  CachedFunction Out;
  ASSERT_TRUE(C.lookup(1, 0, Out)); // refresh "a": "b" is now LRU
  C.insert(4, 0, entry("d", 1024));
  EXPECT_EQ(C.entries(), 3u);
  EXPECT_EQ(C.evictions(), 1u);
  EXPECT_LE(C.bytes(), C.byteBudget());
  EXPECT_TRUE(C.lookup(1, 0, Out));  // refreshed: survived
  EXPECT_FALSE(C.lookup(2, 0, Out)); // LRU victim
  EXPECT_TRUE(C.lookup(3, 0, Out));
  EXPECT_TRUE(C.lookup(4, 0, Out));
}

TEST(ResultCache, OversizedEntryIsUncacheableNotAnError) {
  ResultCache C(128, 1);
  C.insert(1, 0, entry("big", 4096)); // admit-then-evict
  EXPECT_EQ(C.entries(), 0u);
  EXPECT_EQ(C.evictions(), 1u);
  CachedFunction Out;
  EXPECT_FALSE(C.lookup(1, 0, Out));
}

TEST(ResultCache, ExportStatsAndClear) {
  ResultCache C(1 << 20, 2);
  C.insert(1, 0, entry("f"));
  CachedFunction Out;
  C.lookup(1, 0, Out);
  C.lookup(2, 0, Out);

  StatsRegistry R;
  C.exportStats(R);
  EXPECT_EQ(R.get("cache", "hits"), 1u);
  EXPECT_EQ(R.get("cache", "misses"), 1u);
  EXPECT_EQ(R.get("cache", "insertions"), 1u);
  EXPECT_EQ(R.get("cache", "entries"), 1u);
  EXPECT_EQ(R.get("cache", "byte_budget"), uint64_t(1) << 20);

  C.clear();
  EXPECT_EQ(C.entries(), 0u);
  EXPECT_EQ(C.bytes(), 0u);
  EXPECT_EQ(C.hits(), 1u); // counters accumulate across clear()
}

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

struct SocketPair {
  int Fds[2] = {-1, -1};
  SocketPair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0); }
  ~SocketPair() {
    for (int Fd : Fds)
      if (Fd >= 0)
        ::close(Fd);
  }
  void closeWrite() {
    ::close(Fds[0]);
    Fds[0] = -1;
  }
};

TEST(Framing, RoundTripsSequentialFrames) {
  SocketPair P;
  std::string Err;
  ASSERT_TRUE(writeFrame(P.Fds[0], "hello", &Err)) << Err;
  ASSERT_TRUE(writeFrame(P.Fds[0], "", &Err)) << Err;
  std::string Big(100000, 'z');
  ASSERT_TRUE(writeFrame(P.Fds[0], Big, &Err)) << Err;

  std::string Payload;
  EXPECT_EQ(readFrame(P.Fds[1], Payload, &Err), FrameStatus::Ok);
  EXPECT_EQ(Payload, "hello");
  EXPECT_EQ(readFrame(P.Fds[1], Payload, &Err), FrameStatus::Ok);
  EXPECT_EQ(Payload, "");
  EXPECT_EQ(readFrame(P.Fds[1], Payload, &Err), FrameStatus::Ok);
  EXPECT_EQ(Payload, Big);
}

TEST(Framing, EOFAtBoundaryIsClosedMidFrameIsError) {
  {
    SocketPair P;
    P.closeWrite();
    std::string Payload, Err;
    EXPECT_EQ(readFrame(P.Fds[1], Payload, &Err), FrameStatus::Closed);
  }
  {
    SocketPair P;
    // A prefix promising 100 bytes, then only 3 bytes and EOF.
    unsigned char Prefix[4] = {0, 0, 0, 100};
    ASSERT_EQ(::write(P.Fds[0], Prefix, 4), 4);
    ASSERT_EQ(::write(P.Fds[0], "abc", 3), 3);
    P.closeWrite();
    std::string Payload, Err;
    EXPECT_EQ(readFrame(P.Fds[1], Payload, &Err), FrameStatus::Error);
  }
}

TEST(Framing, OversizedFrameIsRejectedWithoutAllocation) {
  SocketPair P;
  unsigned char Prefix[4] = {0xff, 0xff, 0xff, 0xff};
  ASSERT_EQ(::write(P.Fds[0], Prefix, 4), 4);
  std::string Payload, Err;
  EXPECT_EQ(readFrame(P.Fds[1], Payload, &Err, /*MaxBytes=*/1024),
            FrameStatus::Error);
  EXPECT_NE(Err.find("frame"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Request parsing
//===----------------------------------------------------------------------===//

TEST(Protocol, ParsesCompileRequestWithOptions) {
  ServeRequest R;
  std::string Err;
  ASSERT_TRUE(parseServeRequest(
      compileDoc({SourceA}, "{\"level\":\"baseline\",\"fp-reassoc\":false}"),
      R, &Err))
      << Err;
  EXPECT_EQ(R.Cmd, ServeRequest::Command::Compile);
  ASSERT_EQ(R.Requests.size(), 1u);
  EXPECT_EQ(R.Requests[0].Id, "r0");
  EXPECT_EQ(R.Requests[0].Lang, CompileRequest::Language::ILOC);
  EXPECT_EQ(R.Options.Level, OptLevel::Baseline);
  EXPECT_FALSE(R.Options.AllowFPReassoc);
  // The server never runs the in-pipeline verifier (it aborts the process);
  // input is verified up front instead.
  EXPECT_FALSE(R.Options.Verify);
}

TEST(Protocol, ParsesEveryGVNEngineAndListsNamesOnRejection) {
  for (GVNEngine E : AllGVNEngines) {
    ServeRequest R;
    std::string Err;
    ASSERT_TRUE(parseServeRequest(
        compileDoc({SourceA}, std::string("{\"gvn\":\"") + gvnEngineName(E) +
                                  "\"}"),
        R, &Err))
        << Err;
    EXPECT_EQ(R.Options.Engine, E) << gvnEngineName(E);
  }
  ServeRequest R;
  std::string Err;
  EXPECT_FALSE(parseServeRequest(
      compileDoc({SourceA}, "{\"gvn\":\"bogus\"}"), R, &Err));
  // The rejection names every valid engine so clients can self-correct.
  for (GVNEngine E : AllGVNEngines)
    EXPECT_NE(Err.find(gvnEngineName(E)), std::string::npos) << Err;
}

TEST(Protocol, RejectsMalformedDocuments) {
  ServeRequest R;
  std::string Err;
  EXPECT_FALSE(parseServeRequest("not json", R, &Err));
  EXPECT_FALSE(parseServeRequest("{\"cmd\":\"frobnicate\"}", R, &Err));
  EXPECT_FALSE(
      parseServeRequest("{\"cmd\":\"compile\",\"requests\":7}", R, &Err));
  EXPECT_FALSE(parseServeRequest(
      "{\"cmd\":\"compile\",\"options\":{\"level\":\"bogus\"},"
      "\"requests\":[]}",
      R, &Err));
}

TEST(Protocol, ParsesEmbeddedProfile) {
  ProfileDoc D = tinyProfile("a", 5);
  ServeRequest R;
  std::string Err;
  ASSERT_TRUE(parseServeRequest(
      compileDoc({SourceA},
                 "{\"strategy\":\"speculative\",\"profile\":" + D.toJSON() +
                     "}"),
      R, &Err))
      << Err;
  EXPECT_EQ(R.Options.Strategy, PREStrategy::Speculative);
  ASSERT_NE(R.Options.ProfileIn, nullptr);
  EXPECT_EQ(R.Options.ProfileIn, R.Profile.get())
      << "Options.ProfileIn must point at the request-owned document";
  ASSERT_EQ(R.Profile->Profiles.size(), 1u);
  EXPECT_EQ(R.Profile->Profiles[0].Function, "a");
}

TEST(Protocol, RejectsSpeculativeWithoutProfile) {
  ServeRequest R;
  std::string Err;
  EXPECT_FALSE(parseServeRequest(
      compileDoc({SourceA}, "{\"strategy\":\"speculative\"}"), R, &Err));
  EXPECT_NE(Err.find("profile"), std::string::npos) << Err;
}

TEST(Protocol, RejectsMalformedProfile) {
  ServeRequest R;
  std::string Err;
  EXPECT_FALSE(parseServeRequest(
      compileDoc({SourceA}, "{\"profile\":{\"schema\":\"bogus\"}}"), R,
      &Err));
  EXPECT_NE(Err.find("profile"), std::string::npos) << Err;
}

//===----------------------------------------------------------------------===//
// CompileService
//===----------------------------------------------------------------------===//

ServiceConfig testConfig() {
  ServiceConfig Cfg;
  Cfg.Workers = 2;
  return Cfg;
}

TEST(Service, PingStatsShutdown) {
  CompileService Svc(testConfig());
  JSONValue Pong = parsed(Svc.handle("{\"v\":1,\"cmd\":\"ping\"}"));
  EXPECT_TRUE(Pong.get("pong") && Pong.get("pong")->B);

  JSONValue Stats = parsed(Svc.handle("{\"cmd\":\"stats\"}"));
  const JSONValue *Cache = Stats.get("cache");
  ASSERT_TRUE(Cache && Cache->isObject());
  EXPECT_TRUE(Cache->get("hits") && Cache->get("misses"));

  // The -stats-out document uses the flat observability names.
  JSONValue Doc = parsed(Svc.statsJSON());
  const JSONValue *Counters = Doc.get("counters");
  ASSERT_TRUE(Counters && Counters->isObject());
  EXPECT_TRUE(Counters->get("cache.hits"));
  EXPECT_TRUE(Counters->get("cache.byte_budget"));

  EXPECT_FALSE(Svc.shutdownRequested());
  JSONValue Bye = parsed(Svc.handle("{\"cmd\":\"shutdown\"}"));
  EXPECT_TRUE(Bye.get("shutting_down") && Bye.get("shutting_down")->B);
  EXPECT_TRUE(Svc.shutdownRequested());
}

TEST(Service, MalformedRequestYieldsErrorResponse) {
  CompileService Svc(testConfig());
  JSONValue R = parsed(Svc.handle("{{{"));
  ASSERT_TRUE(R.get("ok"));
  EXPECT_FALSE(R.get("ok")->B);
  EXPECT_NE(R.getString("error"), "");
}

TEST(Service, CacheHitIsBitIdenticalToFreshCompile) {
  CompileService Svc(testConfig());
  std::string Doc = compileDoc({SourceA});
  JSONValue Cold = parsed(Svc.handle(Doc));
  JSONValue Warm = parsed(Svc.handle(Doc));
  EXPECT_EQ(Svc.cache().hits(), 1u);
  EXPECT_EQ(Svc.cache().insertions(), 1u);

  const JSONValue *FC = firstFunction(Cold);
  const JSONValue *FW = firstFunction(Warm);
  ASSERT_TRUE(FC && FW);
  EXPECT_FALSE(FC->get("cached")->B);
  EXPECT_TRUE(FW->get("cached")->B);

  // The differential: every payload byte of the hit equals the fresh
  // compile — optimized ILOC, the remark array, and the counter object.
  EXPECT_EQ(FC->getString("name"), FW->getString("name"));
  EXPECT_EQ(FC->getString("iloc"), FW->getString("iloc"));
  EXPECT_EQ(jsonText(*FC->get("remarks")), jsonText(*FW->get("remarks")));
  EXPECT_EQ(jsonText(*FC->get("stats")), jsonText(*FW->get("stats")));

  // And the served ILOC is what the pipeline itself produces on the same
  // input under the same options.
  ParseResult P = parseModule(SourceA);
  ASSERT_TRUE(P.ok()) << P.Error;
  PipelineOptions Opts = serveDefaultOptions();
  optimizeFunction(*P.M->Functions[0], Opts);
  EXPECT_EQ(FC->getString("iloc"), printFunction(*P.M->Functions[0]));
}

TEST(Service, BatchDeduplicatesIdenticalSources) {
  CompileService Svc(testConfig());
  JSONValue R = parsed(Svc.handle(compileDoc({SourceA, SourceB, SourceA})));
  // The duplicate compiles once: three admissions, two pipeline runs.
  EXPECT_EQ(Svc.cache().insertions(), 2u);

  const JSONValue *Rs = R.get("responses");
  ASSERT_TRUE(Rs && Rs->Arr.size() == 3u);
  for (size_t I = 0; I < 3; ++I) {
    EXPECT_EQ(Rs->Arr[I].getString("id"), "r" + std::to_string(I));
    EXPECT_TRUE(Rs->Arr[I].get("ok")->B);
  }
  const JSONValue *F0 = firstFunction(R, 0);
  const JSONValue *F2 = firstFunction(R, 2);
  ASSERT_TRUE(F0 && F2);
  EXPECT_EQ(F0->getString("iloc"), F2->getString("iloc"));
  EXPECT_EQ(jsonText(*F0->get("stats")), jsonText(*F2->get("stats")));
}

TEST(Service, SameNameDifferentBodiesCompileInRounds) {
  // Two requests both defining @f with different bodies: remark streams
  // must not cross-contaminate, so they compile in separate rounds.
  std::string F1 = "func @f() -> i64 {\n^e:\n  %a:i64 = loadi 7\n"
                   "  %b:i64 = add %a, %a\n  ret %b\n}\n";
  std::string F2 = "func @f() -> i64 {\n^e:\n  %a:i64 = loadi 9\n"
                   "  %b:i64 = mul %a, %a\n  ret %b\n}\n";
  CompileService Svc(testConfig());
  JSONValue R = parsed(Svc.handle(compileDoc({F1, F2})));
  const JSONValue *A = firstFunction(R, 0);
  const JSONValue *B = firstFunction(R, 1);
  ASSERT_TRUE(A && B);
  EXPECT_EQ(A->getString("name"), "f");
  EXPECT_EQ(B->getString("name"), "f");
  EXPECT_NE(A->getString("iloc"), B->getString("iloc"));
  EXPECT_EQ(Svc.cache().insertions(), 2u);
}

TEST(Service, BadSourceIsIsolatedAndDoesNotAbort) {
  CompileService Svc(testConfig());
  JSONValue R =
      parsed(Svc.handle(compileDoc({SourceA, "func @broken( syntax error"})));
  const JSONValue *Rs = R.get("responses");
  ASSERT_TRUE(Rs && Rs->Arr.size() == 2u);
  EXPECT_TRUE(Rs->Arr[0].get("ok")->B);
  EXPECT_FALSE(Rs->Arr[1].get("ok")->B);
  EXPECT_NE(Rs->Arr[1].getString("error"), "");

  // The service keeps serving after the bad request.
  JSONValue Again = parsed(Svc.handle(compileDoc({SourceA})));
  EXPECT_TRUE(Again.get("ok")->B);
  EXPECT_EQ(Svc.cache().hits(), 1u);
}

TEST(Service, OptionsChangeMissesTheCache) {
  CompileService Svc(testConfig());
  Svc.handle(compileDoc({SourceA}));
  Svc.handle(compileDoc({SourceA}, "{\"level\":\"baseline\"}"));
  EXPECT_EQ(Svc.cache().hits(), 0u);
  EXPECT_EQ(Svc.cache().insertions(), 2u);
}

TEST(Service, CompilesMiniFortranTraceRequests) {
  TraceOptions TO;
  TO.Requests = 3;
  TO.DupRatio = 0.0;
  std::vector<std::string> Lines = generateSuiteTrace(TO);
  ASSERT_EQ(Lines.size(), 3u);

  CompileService Svc(testConfig());
  for (const std::string &L : Lines) {
    JSONValue R = parsed(
        Svc.handle("{\"v\":1,\"cmd\":\"compile\",\"requests\":[" + L + "]}"));
    ASSERT_TRUE(R.get("ok") && R.get("ok")->B) << L;
    const JSONValue *Rs = R.get("responses");
    ASSERT_TRUE(Rs && Rs->Arr.size() == 1u);
    EXPECT_TRUE(Rs->Arr[0].get("ok")->B)
        << Rs->Arr[0].getString("error");
    EXPECT_NE(Rs->Arr[0].getString("iloc"), "");
  }
  EXPECT_EQ(Svc.cache().insertions(), 3u);
}

//===----------------------------------------------------------------------===//
// Trace generation
//===----------------------------------------------------------------------===//

TEST(Trace, DeterministicInSeed) {
  TraceOptions TO;
  TO.Requests = 40;
  TO.DupRatio = 0.5;
  EXPECT_EQ(generateSuiteTraceText(TO), generateSuiteTraceText(TO));
  TraceOptions Other = TO;
  Other.Seed = 2;
  EXPECT_NE(generateSuiteTraceText(TO), generateSuiteTraceText(Other));
}

TEST(Trace, DupRatioExtremes) {
  TraceOptions TO;
  TO.Requests = 20;
  TO.DupRatio = 1.0; // first request fresh, every later one repeats it
  std::vector<std::string> Lines = generateSuiteTrace(TO);
  ASSERT_EQ(Lines.size(), 20u);
  auto sourceOf = [](const std::string &L) {
    JSONValue V;
    EXPECT_TRUE(parseJSON(L, V));
    return V.getString("source");
  };
  std::string First = sourceOf(Lines[0]);
  EXPECT_NE(First, "");
  for (const std::string &L : Lines)
    EXPECT_EQ(sourceOf(L), First);

  TO.DupRatio = 0.0; // all distinct while the suite lasts
  Lines = generateSuiteTrace(TO);
  std::set<std::string> Unique;
  for (const std::string &L : Lines)
    Unique.insert(sourceOf(L));
  EXPECT_EQ(Unique.size(), Lines.size());
}

TEST(Trace, ParseLinesRoundTrips) {
  TraceOptions TO;
  TO.Requests = 10;
  std::vector<std::string> Lines = generateSuiteTrace(TO);
  std::vector<std::string> Back = parseTraceLines(generateSuiteTraceText(TO));
  EXPECT_EQ(Back, Lines);
}

//===----------------------------------------------------------------------===//
// Daemon over a real socket, concurrent clients
//===----------------------------------------------------------------------===//

int connectTo(const std::string &Path) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

std::string roundTrip(int Fd, const std::string &Doc) {
  std::string Err, Payload;
  EXPECT_TRUE(writeFrame(Fd, Doc, &Err)) << Err;
  EXPECT_EQ(readFrame(Fd, Payload, &Err), FrameStatus::Ok) << Err;
  return Payload;
}

TEST(Daemon, ConcurrentClientsGetDeterministicResults) {
  std::string Path =
      "/tmp/epre_serve_test_" + std::to_string(::getpid()) + ".sock";
  std::string StatsPath = Path + ".stats.json";

  ServerConfig SC;
  SC.SocketPath = Path;
  SC.StatsOutPath = StatsPath;
  SC.Service.Workers = 2;
  ServeDaemon D(SC);
  std::string Err;
  ASSERT_TRUE(D.start(&Err)) << Err;
  bool RunOk = false;
  std::thread Server([&] { RunOk = D.run(); });

  // The expected per-source payloads, computed once through the pipeline.
  std::vector<std::string> Sources = {SourceA, SourceB};
  std::vector<std::string> Expected;
  for (const std::string &S : Sources) {
    ParseResult P = parseModule(S);
    ASSERT_TRUE(P.ok()) << P.Error;
    optimizeFunction(*P.M->Functions[0], serveDefaultOptions());
    Expected.push_back(printFunction(*P.M->Functions[0]));
  }

  constexpr unsigned NumClients = 4, Iterations = 6;
  std::vector<std::string> Failures(NumClients);
  std::vector<std::thread> Clients;
  for (unsigned C = 0; C < NumClients; ++C)
    Clients.emplace_back([&, C] {
      int Fd = connectTo(Path);
      if (Fd < 0) {
        Failures[C] = "connect failed";
        return;
      }
      for (unsigned I = 0; I < Iterations; ++I) {
        size_t Which = (C + I) % Sources.size();
        JSONValue R = parsed(roundTrip(Fd, compileDoc({Sources[Which]})));
        const JSONValue *F = firstFunction(R);
        if (!F || F->getString("iloc") != Expected[Which]) {
          Failures[C] = "nondeterministic response for source " +
                        std::to_string(Which);
          return;
        }
      }
      ::close(Fd);
    });
  for (std::thread &T : Clients)
    T.join();
  for (unsigned C = 0; C < NumClients; ++C)
    EXPECT_EQ(Failures[C], "") << "client " << C;

  // Everything past the first two compiles was served from the cache.
  CompileService &Svc = D.service();
  EXPECT_EQ(Svc.cache().insertions(), Sources.size());
  EXPECT_EQ(Svc.cache().hits() + Svc.cache().misses(),
            uint64_t(NumClients) * Iterations);

  // A client-driven shutdown ends run() cleanly and writes stats-out.
  int Fd = connectTo(Path);
  ASSERT_GE(Fd, 0);
  JSONValue Bye = parsed(roundTrip(Fd, "{\"cmd\":\"shutdown\"}"));
  EXPECT_TRUE(Bye.get("shutting_down") && Bye.get("shutting_down")->B);
  ::close(Fd);
  Server.join();
  EXPECT_TRUE(RunOk);

  std::FILE *Stats = std::fopen(StatsPath.c_str(), "rb");
  ASSERT_NE(Stats, nullptr);
  std::string Text(16 << 10, '\0');
  Text.resize(std::fread(Text.data(), 1, Text.size(), Stats));
  std::fclose(Stats);
  JSONValue V = parsed(Text);
  const JSONValue *Counters = V.get("counters");
  ASSERT_TRUE(Counters);
  EXPECT_GT(Counters->getU64("cache.hits"), 0u);
  std::remove(StatsPath.c_str());
}

TEST(Daemon, RequestStopFromAnotherThreadIsClean) {
  std::string Path =
      "/tmp/epre_serve_stop_" + std::to_string(::getpid()) + ".sock";
  ServerConfig SC;
  SC.SocketPath = Path;
  ServeDaemon D(SC);
  std::string Err;
  ASSERT_TRUE(D.start(&Err)) << Err;
  bool RunOk = false;
  std::thread Server([&] { RunOk = D.run(); });
  D.requestStop();
  Server.join();
  EXPECT_TRUE(RunOk);
}

} // namespace
