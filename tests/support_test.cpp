//===- tests/support_test.cpp - BitVector and string utilities ------------===//

#include "support/BitVector.h"
#include "support/Hash.h"
#include "support/StringUtil.h"

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <set>

using namespace epre;

namespace {

TEST(BitVector, BasicSetResetTest) {
  BitVector V(130);
  EXPECT_EQ(V.size(), 130u);
  EXPECT_TRUE(V.none());
  V.set(0);
  V.set(64);
  V.set(129);
  EXPECT_TRUE(V.test(0));
  EXPECT_TRUE(V.test(64));
  EXPECT_TRUE(V.test(129));
  EXPECT_FALSE(V.test(1));
  EXPECT_EQ(V.count(), 3u);
  V.reset(64);
  EXPECT_FALSE(V.test(64));
  EXPECT_EQ(V.count(), 2u);
}

TEST(BitVector, InitialValueTrue) {
  BitVector V(70, true);
  EXPECT_EQ(V.count(), 70u);
  V.flip();
  EXPECT_TRUE(V.none());
}

TEST(BitVector, SetAllRespectsSize) {
  BitVector V(65);
  V.setAll();
  EXPECT_EQ(V.count(), 65u);
  V.flip();
  EXPECT_EQ(V.count(), 0u);
}

TEST(BitVector, ResizeGrowsWithValue) {
  BitVector V(10, false);
  V.resize(100, true);
  EXPECT_EQ(V.count(), 90u);
  EXPECT_FALSE(V.test(5));
  EXPECT_TRUE(V.test(10));
  EXPECT_TRUE(V.test(99));
}

TEST(BitVector, BooleanAlgebra) {
  BitVector A(100), B(100);
  for (unsigned I = 0; I < 100; I += 2)
    A.set(I);
  for (unsigned I = 0; I < 100; I += 3)
    B.set(I);
  BitVector Or = A;
  Or |= B;
  BitVector And = A;
  And &= B;
  BitVector Diff = A;
  Diff.andNot(B);
  for (unsigned I = 0; I < 100; ++I) {
    EXPECT_EQ(Or.test(I), I % 2 == 0 || I % 3 == 0) << I;
    EXPECT_EQ(And.test(I), I % 2 == 0 && I % 3 == 0) << I;
    EXPECT_EQ(Diff.test(I), I % 2 == 0 && I % 3 != 0) << I;
  }
}

TEST(BitVector, FindFirstNext) {
  BitVector V(200);
  EXPECT_EQ(V.findFirst(), -1);
  std::set<unsigned> Bits = {3, 63, 64, 65, 127, 128, 199};
  for (unsigned B : Bits)
    V.set(B);
  std::set<unsigned> Seen;
  for (int I = V.findFirst(); I != -1; I = V.findNext(unsigned(I)))
    Seen.insert(unsigned(I));
  EXPECT_EQ(Seen, Bits);
}

TEST(BitVector, EqualityIncludesSize) {
  BitVector A(10), B(11);
  EXPECT_NE(A, B);
  BitVector C(10);
  EXPECT_EQ(A, C);
  C.set(9);
  EXPECT_NE(A, C);
}

/// Property sweep: BitVector agrees with std::set over random operations.
class BitVectorRandom : public testing::TestWithParam<unsigned> {};

TEST_P(BitVectorRandom, MatchesReferenceSet) {
  std::mt19937 Rng(GetParam());
  unsigned N = 1 + Rng() % 300;
  BitVector V(N);
  std::set<unsigned> Ref;
  for (unsigned Step = 0; Step < 500; ++Step) {
    unsigned Bit = Rng() % N;
    if (Rng() % 2) {
      V.set(Bit);
      Ref.insert(Bit);
    } else {
      V.reset(Bit);
      Ref.erase(Bit);
    }
  }
  EXPECT_EQ(V.count(), Ref.size());
  std::set<unsigned> Got;
  for (int I = V.findFirst(); I != -1; I = V.findNext(unsigned(I)))
    Got.insert(unsigned(I));
  EXPECT_EQ(Got, Ref);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitVectorRandom,
                         testing::Range(0u, 12u));

/// Universes chosen to exercise the word-level kernels: empty, exactly one
/// word, a partial final word, and multiple words with a partial tail.
class BitVectorKernels : public testing::TestWithParam<unsigned> {};

TEST_P(BitVectorKernels, UnionWithMatchesOrAndReportsChange) {
  unsigned N = GetParam();
  BitVector A(N), B(N);
  for (unsigned I = 0; I < N; I += 2)
    A.set(I);
  for (unsigned I = 0; I < N; I += 3)
    B.set(I);
  BitVector Ref = A;
  Ref |= B;
  BitVector V = A;
  bool Changed = V.unionWith(B);
  EXPECT_EQ(V, Ref);
  // Change iff B had a bit A lacked: any multiple of 3 that is odd (< N).
  EXPECT_EQ(Changed, N > 3);
  // Second application is idempotent and must report no change.
  EXPECT_FALSE(V.unionWith(B));
  // Union with self never changes.
  BitVector C = A;
  EXPECT_FALSE(C.unionWith(A));
}

TEST_P(BitVectorKernels, IntersectWithMatchesAndAndReportsChange) {
  unsigned N = GetParam();
  BitVector A(N), B(N);
  for (unsigned I = 0; I < N; I += 2)
    A.set(I);
  for (unsigned I = 0; I < N; I += 3)
    B.set(I);
  BitVector Ref = A;
  Ref &= B;
  BitVector V = A;
  bool Changed = V.intersectWith(B);
  EXPECT_EQ(V, Ref);
  EXPECT_EQ(Changed, N > 2); // loses bit 2 (and others) once N > 2
  EXPECT_FALSE(V.intersectWith(B));
  BitVector Full(N, true);
  BitVector C = A;
  EXPECT_FALSE(C.intersectWith(Full));
}

TEST_P(BitVectorKernels, IntersectWithComplementMatchesAndNot) {
  unsigned N = GetParam();
  BitVector A(N), B(N);
  for (unsigned I = 0; I < N; I += 2)
    A.set(I);
  for (unsigned I = 0; I < N; I += 3)
    B.set(I);
  BitVector Ref = A;
  Ref.andNot(B);
  BitVector V = A;
  bool Changed = V.intersectWithComplement(B);
  EXPECT_EQ(V, Ref);
  EXPECT_EQ(Changed, N > 0); // bit 0 is in both, so it is always removed
  EXPECT_FALSE(V.intersectWithComplement(B));
  BitVector Empty(N);
  BitVector C = A;
  EXPECT_FALSE(C.intersectWithComplement(Empty));
}

TEST_P(BitVectorKernels, AssignFromCopiesAndReportsChange) {
  unsigned N = GetParam();
  BitVector A(N), B(N);
  for (unsigned I = 0; I < N; I += 2)
    A.set(I);
  for (unsigned I = 0; I < N; I += 5)
    B.set(I);
  BitVector V = A;
  bool Changed = V.assignFrom(B);
  EXPECT_EQ(V, B);
  EXPECT_EQ(Changed, N > 2); // identical universes differ once both non-empty
  EXPECT_FALSE(V.assignFrom(B));
}

TEST_P(BitVectorKernels, AssignMeetPreserveGenFusesAndOr) {
  unsigned N = GetParam();
  BitVector M(N), P(N), G(N);
  for (unsigned I = 0; I < N; I += 2)
    M.set(I);
  for (unsigned I = 0; I < N; I += 3)
    P.set(I);
  for (unsigned I = 0; I < N; I += 7)
    G.set(I);
  BitVector Ref = M;
  Ref &= P;
  Ref |= G;
  BitVector V(N);
  bool Changed = V.assignMeetPreserveGen(M, P, G);
  EXPECT_EQ(V, Ref);
  EXPECT_EQ(Changed, N > 0); // bit 0 always survives the meet
  // Re-applying with the same operands is a fixpoint.
  EXPECT_FALSE(V.assignMeetPreserveGen(M, P, G));
  // Aliasing the meet operand with the destination (self-loop blocks in the
  // dataflow engine) must behave like an in-place transfer.
  BitVector W = M;
  W.assignMeetPreserveGen(W, P, G);
  EXPECT_EQ(W, Ref);
}

TEST_P(BitVectorKernels, AssignMeetKillGenFusesAndNotOr) {
  unsigned N = GetParam();
  BitVector M(N), K(N), G(N);
  for (unsigned I = 0; I < N; I += 2)
    M.set(I);
  for (unsigned I = 0; I < N; I += 3)
    K.set(I);
  for (unsigned I = 0; I < N; I += 7)
    G.set(I);
  BitVector Ref = M;
  Ref.andNot(K);
  Ref |= G;
  BitVector V(N);
  bool Changed = V.assignMeetKillGen(M, K, G);
  EXPECT_EQ(V, Ref);
  EXPECT_EQ(Changed, N > 0); // bit 0 is killed but regenerated
  EXPECT_FALSE(V.assignMeetKillGen(M, K, G));
  // ~K must not leak bits beyond the universe into the padding words.
  BitVector Empty(N);
  BitVector U(N);
  U.assignMeetKillGen(Empty, Empty, Empty);
  EXPECT_TRUE(U.none());
  BitVector W = M;
  W.assignMeetKillGen(W, K, G);
  EXPECT_EQ(W, Ref);
}

TEST_P(BitVectorKernels, FullAndEmptyUniverses) {
  unsigned N = GetParam();
  BitVector Full(N, true), Empty(N), V(N);
  EXPECT_EQ(V.unionWith(Full), N > 0);
  EXPECT_EQ(V.count(), N);
  EXPECT_EQ(V.intersectWith(Empty), N > 0);
  EXPECT_TRUE(V.none());
  BitVector W(N, true);
  EXPECT_EQ(W.intersectWithComplement(Full), N > 0);
  EXPECT_TRUE(W.none());
}

INSTANTIATE_TEST_SUITE_P(Universes, BitVectorKernels,
                         testing::Values(0u, 1u, 64u, 100u, 130u));

TEST(BitVectorScratch, SlotsAreStableAndRecycled) {
  BitVectorScratch S(100);
  BitVector &A = S.zeroed(0);
  BitVector &B = S.ones(5); // forces pool growth past slot 0
  A.set(3);                 // must still be valid storage
  EXPECT_TRUE(S.raw(0).test(3));
  EXPECT_EQ(B.count(), 100u);
  // Re-borrowing clears as requested and reuses the same storage.
  EXPECT_TRUE(S.zeroed(0).none());
  EXPECT_EQ(&S.raw(0), &A);
  // Changing universe re-sizes on next borrow.
  S.setUniverse(40);
  EXPECT_EQ(S.ones(0).count(), 40u);
}

TEST(StringUtil, Strprintf) {
  EXPECT_EQ(strprintf("x=%d y=%s", 42, "abc"), "x=42 y=abc");
  EXPECT_EQ(strprintf("%s", ""), "");
  std::string Long(500, 'a');
  EXPECT_EQ(strprintf("%s", Long.c_str()), Long);
}

TEST(StringUtil, HashCombineDistinguishes) {
  EXPECT_NE(hashCombine(0, 1), hashCombine(0, 2));
  EXPECT_NE(hashCombine(1, 0), hashCombine(2, 0));
  EXPECT_NE(hashCombine(hashCombine(0, 1), 2),
            hashCombine(hashCombine(0, 2), 1));
}

TEST(Hash, StringDeterministicAndSensitive) {
  EXPECT_EQ(hashString("abc"), hashString("abc"));
  EXPECT_NE(hashString("abc"), hashString("abd"));
  EXPECT_NE(hashString(""), hashString(std::string(1, '\0')));
  // The size is mixed in before the data, so inputs that differ only by
  // trailing zero bytes (which pad into identical tail words) still differ.
  std::string A = "abcdefgh";
  std::string B = A + std::string(1, '\0');
  EXPECT_NE(hashString(A), hashString(B));
}

TEST(Hash, ChunkBoundaries) {
  // 7/8/9-byte inputs exercise tail-only, exact-word, and word+tail paths;
  // all must be distinct and agree with a byte-identical second call.
  std::string S = "abcdefghi";
  std::set<uint64_t> Digests;
  for (size_t N = 0; N <= S.size(); ++N) {
    uint64_t H = hashString(std::string_view(S).substr(0, N));
    EXPECT_EQ(H, hashBytes(S.data(), N));
    Digests.insert(H);
  }
  EXPECT_EQ(Digests.size(), S.size() + 1);
}

TEST(Hash, BytesMatchesManualFNV1a) {
  // hashBytes is chunked FNV-1a: seed, mix the size, then one step per
  // zero-padded native-endian word. Pin the recipe against a hand rolled
  // computation so the shared helper cannot silently drift.
  const char Data[] = {'x', 'y', 'z'};
  uint64_t W = 0;
  std::memcpy(&W, Data, 3);
  uint64_t Expect = fnv1aStep(fnv1aStep(FNV1aBasis, 3), W);
  EXPECT_EQ(hashBytes(Data, 3), Expect);
}

TEST(Hash, MemoryImageDigestIsTheHashCombineChain) {
  // hashMemoryImage is a pinned cross-run contract (the interpreter's
  // differential-testing digest; tests/eval_interp_test.cpp pins concrete
  // values). Verify the shared chunked traversal reproduces the original
  // formulation: seed combined with the size, then hashCombine per word.
  uint8_t Img[12];
  for (size_t I = 0; I < sizeof(Img); ++I)
    Img[I] = uint8_t(I * 7 + 1);
  uint64_t H = hashCombine(0x243f6a8885a308d3ULL, sizeof(Img));
  uint64_t W0 = 0, W1 = 0;
  std::memcpy(&W0, Img, 8);
  std::memcpy(&W1, Img + 8, 4);
  H = hashCombine(hashCombine(H, W0), W1);
  EXPECT_EQ(hashMemoryImage(Img, sizeof(Img)), H);
  EXPECT_NE(hashMemoryImage(Img, 8), hashMemoryImage(Img, 12));
}

} // namespace
