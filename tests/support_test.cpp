//===- tests/support_test.cpp - BitVector and string utilities ------------===//

#include "support/BitVector.h"
#include "support/StringUtil.h"

#include <gtest/gtest.h>

#include <random>
#include <set>

using namespace epre;

namespace {

TEST(BitVector, BasicSetResetTest) {
  BitVector V(130);
  EXPECT_EQ(V.size(), 130u);
  EXPECT_TRUE(V.none());
  V.set(0);
  V.set(64);
  V.set(129);
  EXPECT_TRUE(V.test(0));
  EXPECT_TRUE(V.test(64));
  EXPECT_TRUE(V.test(129));
  EXPECT_FALSE(V.test(1));
  EXPECT_EQ(V.count(), 3u);
  V.reset(64);
  EXPECT_FALSE(V.test(64));
  EXPECT_EQ(V.count(), 2u);
}

TEST(BitVector, InitialValueTrue) {
  BitVector V(70, true);
  EXPECT_EQ(V.count(), 70u);
  V.flip();
  EXPECT_TRUE(V.none());
}

TEST(BitVector, SetAllRespectsSize) {
  BitVector V(65);
  V.setAll();
  EXPECT_EQ(V.count(), 65u);
  V.flip();
  EXPECT_EQ(V.count(), 0u);
}

TEST(BitVector, ResizeGrowsWithValue) {
  BitVector V(10, false);
  V.resize(100, true);
  EXPECT_EQ(V.count(), 90u);
  EXPECT_FALSE(V.test(5));
  EXPECT_TRUE(V.test(10));
  EXPECT_TRUE(V.test(99));
}

TEST(BitVector, BooleanAlgebra) {
  BitVector A(100), B(100);
  for (unsigned I = 0; I < 100; I += 2)
    A.set(I);
  for (unsigned I = 0; I < 100; I += 3)
    B.set(I);
  BitVector Or = A;
  Or |= B;
  BitVector And = A;
  And &= B;
  BitVector Diff = A;
  Diff.andNot(B);
  for (unsigned I = 0; I < 100; ++I) {
    EXPECT_EQ(Or.test(I), I % 2 == 0 || I % 3 == 0) << I;
    EXPECT_EQ(And.test(I), I % 2 == 0 && I % 3 == 0) << I;
    EXPECT_EQ(Diff.test(I), I % 2 == 0 && I % 3 != 0) << I;
  }
}

TEST(BitVector, FindFirstNext) {
  BitVector V(200);
  EXPECT_EQ(V.findFirst(), -1);
  std::set<unsigned> Bits = {3, 63, 64, 65, 127, 128, 199};
  for (unsigned B : Bits)
    V.set(B);
  std::set<unsigned> Seen;
  for (int I = V.findFirst(); I != -1; I = V.findNext(unsigned(I)))
    Seen.insert(unsigned(I));
  EXPECT_EQ(Seen, Bits);
}

TEST(BitVector, EqualityIncludesSize) {
  BitVector A(10), B(11);
  EXPECT_NE(A, B);
  BitVector C(10);
  EXPECT_EQ(A, C);
  C.set(9);
  EXPECT_NE(A, C);
}

/// Property sweep: BitVector agrees with std::set over random operations.
class BitVectorRandom : public testing::TestWithParam<unsigned> {};

TEST_P(BitVectorRandom, MatchesReferenceSet) {
  std::mt19937 Rng(GetParam());
  unsigned N = 1 + Rng() % 300;
  BitVector V(N);
  std::set<unsigned> Ref;
  for (unsigned Step = 0; Step < 500; ++Step) {
    unsigned Bit = Rng() % N;
    if (Rng() % 2) {
      V.set(Bit);
      Ref.insert(Bit);
    } else {
      V.reset(Bit);
      Ref.erase(Bit);
    }
  }
  EXPECT_EQ(V.count(), Ref.size());
  std::set<unsigned> Got;
  for (int I = V.findFirst(); I != -1; I = V.findNext(unsigned(I)))
    Got.insert(unsigned(I));
  EXPECT_EQ(Got, Ref);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitVectorRandom,
                         testing::Range(0u, 12u));

TEST(StringUtil, Strprintf) {
  EXPECT_EQ(strprintf("x=%d y=%s", 42, "abc"), "x=42 y=abc");
  EXPECT_EQ(strprintf("%s", ""), "");
  std::string Long(500, 'a');
  EXPECT_EQ(strprintf("%s", Long.c_str()), Long);
}

TEST(StringUtil, HashCombineDistinguishes) {
  EXPECT_NE(hashCombine(0, 1), hashCombine(0, 2));
  EXPECT_NE(hashCombine(1, 0), hashCombine(2, 0));
  EXPECT_NE(hashCombine(hashCombine(0, 1), 2),
            hashCombine(hashCombine(0, 2), 1));
}

} // namespace
