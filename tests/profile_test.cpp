//===- tests/profile_test.cpp - Dynamic execution profiles ----------------===//
///
/// Covers the dynamic profiler end to end: the opcode-class partition, the
/// block/edge counts the interpreter collects (golden values on the paper's
/// Figure 2 example), the internal-consistency invariants (per-block counts
/// sum exactly to DynOps; edge counts are flow-consistent), JSON
/// round-tripping, the ProfileDiff regression gate (proven to fail on an
/// injected regression), hotness-annotated remarks, and serial/parallel
/// pipeline determinism observed through profiles.
///
//===----------------------------------------------------------------------===//

#include "frontend/Lower.h"
#include "instrument/PassInstrumentation.h"
#include "instrument/Profile.h"
#include "interp/Interpreter.h"
#include "ir/IRPrinter.h"
#include "pipeline/Pipeline.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

using namespace epre;

namespace {

const char *FooSource = R"(
function foo(y, z)
  s = 0
  x = y + z
  do i = x, 100
    s = i + s + x
  end do
  return s
end
)";

Function *compileFoo(LowerResult &LR, NamingMode Mode) {
  LR = compileMiniFortran(FooSource, Mode);
  EXPECT_TRUE(LR.ok()) << LR.Error;
  return LR.ok() ? LR.M->find("foo") : nullptr;
}

/// Interprets foo(1.0, 2.0) with a collector and returns the profile.
FunctionProfile profileFoo(Function &F, ExecResult *ExecOut = nullptr) {
  MemoryImage Mem(0);
  ProfileCollector PC;
  ExecResult E = interpret(F, {RtValue::ofF(1.0), RtValue::ofF(2.0)}, Mem,
                           ExecLimits(), &PC);
  EXPECT_TRUE(E.ok()) << E.TrapReason;
  if (ExecOut)
    *ExecOut = E;
  return PC.finalize(F);
}

uint64_t classSum(const std::array<uint64_t, NumOpClasses> &C) {
  uint64_t S = 0;
  for (uint64_t V : C)
    S += V;
  return S;
}

TEST(Profile, ClassifyPartitionsEveryOpcode) {
  // Every (opcode, type) combination lands in exactly one valid class:
  // the partition is what guarantees class counts sum to DynOps.
  for (unsigned Op = 0; Op <= unsigned(Opcode::Phi); ++Op)
    for (Type Ty : {Type::I64, Type::F64}) {
      OpClass C = classifyOp(Opcode(Op), Ty);
      EXPECT_LT(unsigned(C), NumOpClasses) << opcodeName(Opcode(Op));
    }
  // The Table-1-style columns.
  EXPECT_EQ(classifyOp(Opcode::Load, Type::F64), OpClass::Memory);
  EXPECT_EQ(classifyOp(Opcode::Store, Type::I64), OpClass::Memory);
  EXPECT_EQ(classifyOp(Opcode::Cbr, Type::I64), OpClass::Branch);
  EXPECT_EQ(classifyOp(Opcode::Call, Type::F64), OpClass::Call);
  EXPECT_EQ(classifyOp(Opcode::Mul, Type::F64), OpClass::FPMult);
  EXPECT_EQ(classifyOp(Opcode::Div, Type::F64), OpClass::FPDiv);
  EXPECT_EQ(classifyOp(Opcode::Add, Type::F64), OpClass::FPArith);
  EXPECT_EQ(classifyOp(Opcode::Mul, Type::I64), OpClass::IntArith);
  EXPECT_EQ(classifyOp(Opcode::Div, Type::I64), OpClass::IntArith);
}

TEST(Profile, Fig2GoldenBlockAndEdgeProfile) {
  // The paper's running example, naive front end, foo(1.0, 2.0): the loop
  // runs i = 3..100, so the body executes 98 times with 97 back edges.
  // These are the golden dynamic counts of the whole profiler stack.
  LowerResult LR;
  Function *F = compileFoo(LR, NamingMode::Naive);
  ASSERT_TRUE(F);
  ExecResult E;
  FunctionProfile P = profileFoo(*F, &E);

  EXPECT_EQ(E.ReturnValue.F, 5341.0);
  EXPECT_EQ(P.DynOps, 694u);
  ASSERT_EQ(P.Blocks.size(), 3u);

  const BlockProfile &Entry = P.Blocks[0];
  EXPECT_EQ(Entry.Label, "entry");
  EXPECT_EQ(Entry.Count, 1u);
  EXPECT_EQ(Entry.DynOps, 7u);
  ASSERT_EQ(Entry.Edges.size(), 1u);
  EXPECT_EQ(Entry.Edges[0].To, "b1");
  EXPECT_EQ(Entry.Edges[0].Count, 1u);

  const BlockProfile &Loop = P.Blocks[1];
  EXPECT_EQ(Loop.Label, "b1");
  EXPECT_EQ(Loop.Count, 98u);
  EXPECT_EQ(Loop.DynOps, 686u);
  ASSERT_EQ(Loop.Edges.size(), 2u); // sorted by target label
  EXPECT_EQ(Loop.Edges[0].To, "b1");
  EXPECT_EQ(Loop.Edges[0].Count, 97u);
  EXPECT_EQ(Loop.Edges[1].To, "b2");
  EXPECT_EQ(Loop.Edges[1].Count, 1u);

  const BlockProfile &Exit = P.Blocks[2];
  EXPECT_EQ(Exit.Label, "b2");
  EXPECT_EQ(Exit.Count, 1u);
  EXPECT_EQ(Exit.Edges.size(), 0u);

  // Class attribution: the naive loop is integer address arithmetic, the
  // two F64 adds of the accumulation, and one branch per block entry.
  EXPECT_EQ(P.ClassOps[unsigned(OpClass::Branch)], 100u);
  EXPECT_EQ(P.ClassOps[unsigned(OpClass::IntArith)], 396u);
  EXPECT_EQ(P.ClassOps[unsigned(OpClass::FPArith)], 198u);
  EXPECT_EQ(P.ClassOps[unsigned(OpClass::Memory)], 0u);
}

TEST(Profile, BlockCountsSumExactlyToDynOps) {
  for (NamingMode NM : {NamingMode::Naive, NamingMode::Hashed}) {
    LowerResult LR;
    Function *F = compileFoo(LR, NM);
    ASSERT_TRUE(F);
    ExecResult E;
    FunctionProfile P = profileFoo(*F, &E);

    // Function totals match the interpreter's own counters exactly.
    EXPECT_EQ(P.DynOps, E.DynOps);
    EXPECT_EQ(P.WeightedCost, E.WeightedCost);

    // Per-block DynOps sum to the function total; per-block and function
    // class counts each sum to the corresponding DynOps (the class
    // partition is exhaustive).
    uint64_t BlockSum = 0, CountSum = 0;
    for (const BlockProfile &B : P.Blocks) {
      BlockSum += B.DynOps;
      CountSum += B.Count;
      EXPECT_EQ(classSum(B.ClassOps), B.DynOps) << B.Label;
    }
    EXPECT_EQ(BlockSum, P.DynOps);
    EXPECT_GT(CountSum, 0u);
    EXPECT_EQ(classSum(P.ClassOps), P.DynOps);
  }
}

TEST(Profile, EdgeCountsAreFlowConsistent) {
  // Kirchhoff on the profile: for every block, in-edge counts (plus one
  // for the entry block's external entry) equal the execution count, and
  // out-edge counts equal the count except where the run left the
  // function (the ret executes once, in exactly one block).
  LowerResult LR;
  Function *F = compileFoo(LR, NamingMode::Naive);
  ASSERT_TRUE(F);
  FunctionProfile P = profileFoo(*F);

  std::map<std::string, uint64_t> InCount;
  for (const BlockProfile &B : P.Blocks)
    for (const BlockProfile::Edge &Ed : B.Edges)
      InCount[Ed.To] += Ed.Count;

  ASSERT_FALSE(P.Blocks.empty());
  const std::string &EntryLabel = P.Blocks.front().Label;
  unsigned ExitBlocks = 0;
  for (const BlockProfile &B : P.Blocks) {
    uint64_t In = InCount[B.Label] + (B.Label == EntryLabel ? 1 : 0);
    EXPECT_EQ(In, B.Count) << "in-flow at ^" << B.Label;
    uint64_t Out = 0;
    for (const BlockProfile::Edge &Ed : B.Edges)
      Out += Ed.Count;
    if (Out == B.Count - 1)
      ++ExitBlocks; // the block the single ret left from
    else
      EXPECT_EQ(Out, B.Count) << "out-flow at ^" << B.Label;
  }
  EXPECT_EQ(ExitBlocks, 1u);
}

TEST(Profile, JSONRoundTrip) {
  LowerResult LR;
  Function *F = compileFoo(LR, NamingMode::Naive);
  ASSERT_TRUE(F);
  ProfileDoc Doc;
  Doc.Profiles.push_back(profileFoo(*F));
  Doc.Profiles.back().Level = "baseline";

  // Full-detail round trip: parse(serialize(doc)) reserializes to the
  // identical byte string, blocks and edges included.
  std::string Full = Doc.toJSON(true);
  ProfileDoc Back;
  std::string Err;
  ASSERT_TRUE(ProfileDoc::fromJSON(Full, Back, &Err)) << Err;
  EXPECT_EQ(Back.toJSON(true), Full);
  ASSERT_EQ(Back.Profiles.size(), 1u);
  EXPECT_EQ(Back.Profiles[0].Level, "baseline");
  EXPECT_EQ(Back.Profiles[0].DynOps, Doc.Profiles[0].DynOps);
  ASSERT_TRUE(Back.find("foo", "baseline"));
  EXPECT_EQ(Back.find("foo", "baseline")->Blocks.size(),
            Doc.Profiles[0].Blocks.size());

  // Summary-only round trip (the committed suite baseline format).
  std::string Summary = Doc.toJSON(false);
  ProfileDoc SummaryBack;
  ASSERT_TRUE(ProfileDoc::fromJSON(Summary, SummaryBack, &Err)) << Err;
  EXPECT_EQ(SummaryBack.toJSON(false), Summary);
  EXPECT_TRUE(SummaryBack.Profiles[0].Blocks.empty());
  EXPECT_EQ(SummaryBack.totalDynOps(), Doc.totalDynOps());

  // Schema violations are rejected, not misread.
  EXPECT_FALSE(ProfileDoc::fromJSON("{\"schema\":\"bogus\"}", Back, &Err));
  EXPECT_FALSE(ProfileDoc::fromJSON("not json at all", Back, &Err));
}

TEST(Profile, DiffGateFailsOnInjectedRegression) {
  LowerResult LR;
  Function *F = compileFoo(LR, NamingMode::Naive);
  ASSERT_TRUE(F);
  ProfileDoc Old;
  Old.Profiles.push_back(profileFoo(*F));

  // Identical runs pass any tolerance.
  ProfileDoc Same = Old;
  EXPECT_TRUE(ProfileDiff::compute(Old, Same).regressions(0.0).empty());

  // Inject a 10% operation-count regression: the 5% gate must fail and
  // attribute the growth, a 25% gate must still pass.
  ProfileDoc New = Old;
  FunctionProfile &NP = New.Profiles[0];
  uint64_t Extra = NP.DynOps / 10;
  NP.DynOps += Extra;
  NP.ClassOps[unsigned(OpClass::IntArith)] += Extra;
  ProfileDiff Diff = ProfileDiff::compute(Old, New);
  std::vector<std::string> Bad = Diff.regressions(5.0);
  ASSERT_EQ(Bad.size(), 1u);
  EXPECT_NE(Bad[0].find("foo"), std::string::npos);
  EXPECT_NE(Bad[0].find("int_arith"), std::string::npos) << Bad[0];
  EXPECT_TRUE(Diff.regressions(25.0).empty());
  EXPECT_EQ(Diff.Deltas.at(0).opsDelta(), int64_t(Extra));

  // A routine that vanished from the new profile is always a regression
  // (the gate cannot vouch for what it cannot see).
  ProfileDoc Missing;
  EXPECT_FALSE(ProfileDiff::compute(Old, Missing).regressions(99.0).empty());

  // The report names the entry and the per-class attribution.
  std::string Report = Diff.report(/*OnlyChanged=*/true);
  EXPECT_NE(Report.find("foo"), std::string::npos);
  EXPECT_NE(Report.find("int_arith"), std::string::npos);
}

TEST(Profile, HotRemarksGoldenOnFig2) {
  // Baseline: the unoptimized (hashed-naming) foo, profiled on the same
  // inputs the golden-remark test uses. The loop block ^b1 executes 98
  // times; both PRE remarks land there, so both carry count=98 and keep
  // their stream order (delete before insert — stable sort on ties).
  LowerResult BaseLR;
  Function *BaseF = compileFoo(BaseLR, NamingMode::Hashed);
  ASSERT_TRUE(BaseF);
  ProfileDoc Baseline;
  Baseline.Profiles.push_back(profileFoo(*BaseF));

  LowerResult LR;
  Function *F = compileFoo(LR, NamingMode::Hashed);
  ASSERT_TRUE(F);
  InstrumentationOptions IO;
  IO.CollectRemarks = true;
  IO.RemarkPasses = {"pre"};
  PassInstrumentation PI(IO);
  PipelineOptions PO;
  PO.Level = OptLevel::Partial;
  PO.Instr = &PI;
  optimizeFunction(*F, PO);

  std::vector<HotRemark> Hot =
      annotateHotness(PI.remarks().remarks(), Baseline);
  ASSERT_EQ(Hot.size(), 2u);
  EXPECT_TRUE(Hot[0].HasCount);
  EXPECT_EQ(Hot[0].Count, 98u);
  EXPECT_EQ(renderHotRemarks(Hot),
            "[count=98] pre: delete: [foo:^b1] loadi — "
            "redundant computation of r16 removed\n"
            "[count=98] pre: insert: [foo:^b1] loadi — "
            "computation of r16 inserted on edge ^entry -> ^b1\n");

  // A remark in a block the baseline does not know sorts last, unweighted.
  Remark Stray;
  Stray.Kind = RemarkKind::Insert;
  Stray.Pass = "pre";
  Stray.Function = "foo";
  Stray.Block = "made_up_block";
  Stray.Opcode = "add";
  Stray.Message = "synthetic";
  std::vector<Remark> WithStray = PI.remarks().remarks();
  WithStray.insert(WithStray.begin(), Stray);
  std::vector<HotRemark> Hot2 = annotateHotness(WithStray, Baseline);
  ASSERT_EQ(Hot2.size(), 3u);
  EXPECT_FALSE(Hot2.back().HasCount);
  EXPECT_EQ(Hot2.back().R.Block, "made_up_block");
}

TEST(Profile, SerialAndParallelPipelinesProfileIdentically) {
  // Optimize the same multi-function module serially and with the
  // parallel driver, then profile every function: the profiles must be
  // bit-identical (the parallel driver changes scheduling, never code).
  std::string Src;
  for (int I = 0; I < 6; ++I) {
    std::string One = FooSource;
    One.replace(One.find("function foo"), 12,
                "function gen" + std::to_string(I));
    Src += One;
  }
  LowerResult Serial = compileMiniFortran(Src, NamingMode::Naive);
  LowerResult Par = compileMiniFortran(Src, NamingMode::Naive);
  ASSERT_TRUE(Serial.ok() && Par.ok());

  PipelineOptions PO;
  PO.Level = OptLevel::Distribution;
  optimizeModule(*Serial.M, PO);
  runPipelineParallel(*Par.M, PO, 4);

  auto profileAll = [](Module &M) {
    ProfileDoc Doc;
    for (const auto &F : M.Functions) {
      MemoryImage Mem(0);
      ProfileCollector PC;
      ExecResult E = interpret(*F, {RtValue::ofF(1.0), RtValue::ofF(2.0)},
                               Mem, ExecLimits(), &PC);
      EXPECT_TRUE(E.ok()) << F->name() << ": " << E.TrapReason;
      Doc.Profiles.push_back(PC.finalize(*F));
    }
    return Doc;
  };
  ProfileDoc SerialDoc = profileAll(*Serial.M);
  ProfileDoc ParDoc = profileAll(*Par.M);
  EXPECT_EQ(SerialDoc.toJSON(true), ParDoc.toJSON(true));
  EXPECT_TRUE(
      ProfileDiff::compute(SerialDoc, ParDoc).regressions(0.0).empty());
}

TEST(Profile, SerialAndParallelAgreeUnderSpeculativePRE) {
  // Same identity check with the profile-guided strategy: every worker
  // joins the same attached ProfileDoc onto its function, so scheduling
  // must not leak into speculative placement decisions.
  std::string Src;
  for (int I = 0; I < 6; ++I) {
    std::string One = FooSource;
    One.replace(One.find("function foo"), 12,
                "function gen" + std::to_string(I));
    Src += One;
  }
  LowerResult Train = compileMiniFortran(Src, NamingMode::Hashed);
  LowerResult Serial = compileMiniFortran(Src, NamingMode::Hashed);
  LowerResult Par = compileMiniFortran(Src, NamingMode::Hashed);
  ASSERT_TRUE(Train.ok() && Serial.ok() && Par.ok());

  // Train on the unoptimized lowering, as a real profile-guided build
  // would.
  ProfileDoc TrainDoc;
  for (const auto &F : Train.M->Functions) {
    MemoryImage Mem(0);
    ProfileCollector PC;
    ExecResult E = interpret(*F, {RtValue::ofF(1.0), RtValue::ofF(2.0)}, Mem,
                             ExecLimits(), &PC);
    ASSERT_TRUE(E.ok()) << F->name() << ": " << E.TrapReason;
    TrainDoc.Profiles.push_back(PC.finalize(*F));
  }

  PipelineOptions PO;
  PO.Level = OptLevel::Partial;
  PO.Strategy = PREStrategy::Speculative;
  PO.ProfileIn = &TrainDoc;
  optimizeModule(*Serial.M, PO);
  runPipelineParallel(*Par.M, PO, 4);

  for (size_t I = 0; I < Serial.M->Functions.size(); ++I)
    EXPECT_EQ(printFunction(*Serial.M->Functions[I]),
              printFunction(*Par.M->Functions[I]))
        << Serial.M->Functions[I]->name();
}

TEST(Profile, TrappedRunKeepsPartialProfile) {
  // A run that dies on the op limit still yields a consistent profile of
  // everything executed up to the trap.
  LowerResult LR;
  Function *F = compileFoo(LR, NamingMode::Naive);
  ASSERT_TRUE(F);
  MemoryImage Mem(0);
  ProfileCollector PC;
  ExecLimits Lim;
  Lim.MaxOps = 100;
  ExecResult E = interpret(*F, {RtValue::ofF(1.0), RtValue::ofF(2.0)}, Mem,
                           Lim, &PC);
  ASSERT_TRUE(E.Trapped);
  FunctionProfile P = PC.finalize(*F);
  EXPECT_EQ(P.DynOps, E.DynOps);
  uint64_t BlockSum = 0;
  for (const BlockProfile &B : P.Blocks)
    BlockSum += B.DynOps;
  EXPECT_EQ(BlockSum, P.DynOps);
  EXPECT_EQ(classSum(P.ClassOps), P.DynOps);
}

} // namespace
