//===- tests/suite_test.cpp - Differential testing over the full suite ----===//
///
/// For every routine of the 50-routine suite and every optimization level:
/// the program must compile, verify, run without trapping, and compute the
/// same observable result as the unoptimized program (bit-exact for the
/// non-reassociating levels; within a relative tolerance for the
/// reassociating ones, which FORTRAN-legally reorder F64 arithmetic).
/// Parameterized gtest: one test instance per (routine, level).
///
//===----------------------------------------------------------------------===//

#include "suite/Harness.h"

#include <cmath>
#include <gtest/gtest.h>

using namespace epre;

namespace {

struct SuiteCase {
  unsigned RoutineIdx;
  OptLevel Level;
};

std::string caseName(const testing::TestParamInfo<SuiteCase> &Info) {
  const Routine &R = benchmarkSuite()[Info.param.RoutineIdx];
  return R.Name + "_" + optLevelName(Info.param.Level);
}

class SuiteDifferential : public testing::TestWithParam<SuiteCase> {};

TEST_P(SuiteDifferential, MatchesUnoptimized) {
  const Routine &R = benchmarkSuite()[GetParam().RoutineIdx];
  OptLevel Level = GetParam().Level;

  Measurement Ref = measureRoutine(R, OptLevel::None);
  ASSERT_TRUE(Ref.CompileOk) << Ref.CompileError;
  ASSERT_FALSE(Ref.Trapped) << Ref.TrapReason;
  ASSERT_TRUE(Ref.HasReturn);

  Measurement Got = measureRoutine(R, Level);
  ASSERT_TRUE(Got.CompileOk) << Got.CompileError;
  ASSERT_FALSE(Got.Trapped) << Got.TrapReason;
  ASSERT_TRUE(Got.HasReturn);

  bool Reassoc =
      Level == OptLevel::Reassociation || Level == OptLevel::Distribution;
  ASSERT_EQ(Ref.ReturnValue.Ty, Got.ReturnValue.Ty);
  if (Ref.ReturnValue.isI()) {
    EXPECT_EQ(Ref.ReturnValue.I, Got.ReturnValue.I);
  } else if (Reassoc) {
    double A = Ref.ReturnValue.F, B = Got.ReturnValue.F;
    EXPECT_NEAR(A, B, 1e-8 * (1.0 + std::fabs(A)));
  } else {
    EXPECT_EQ(Ref.ReturnValue.F, Got.ReturnValue.F);
  }
  if (!Reassoc) {
    EXPECT_EQ(Ref.MemHash, Got.MemHash);
  }

  // Optimization must never be catastrophically slower (paper §4.2 allows
  // small degradations; 1.5x is far outside them).
  EXPECT_LE(Got.DynOps, Ref.DynOps + Ref.DynOps / 2 + 64);
}

std::vector<SuiteCase> allCases() {
  std::vector<SuiteCase> Cases;
  for (unsigned I = 0; I < benchmarkSuite().size(); ++I)
    for (OptLevel L : {OptLevel::Baseline, OptLevel::Partial,
                       OptLevel::Reassociation, OptLevel::Distribution})
      Cases.push_back({I, L});
  return Cases;
}

INSTANTIATE_TEST_SUITE_P(AllRoutines, SuiteDifferential,
                         testing::ValuesIn(allCases()), caseName);

// The headline shape of Table 1, asserted as aggregate properties.
TEST(SuiteAggregate, PREImprovesMostRoutines) {
  unsigned Wins = 0, Total = 0;
  for (const Routine &R : benchmarkSuite()) {
    Measurement Base = measureRoutine(R, OptLevel::Baseline);
    Measurement Part = measureRoutine(R, OptLevel::Partial);
    if (!Base.ok() || !Part.ok())
      continue;
    ++Total;
    if (Part.DynOps < Base.DynOps)
      ++Wins;
  }
  EXPECT_EQ(Total, 50u);
  // Paper: PRE improves nearly every routine.
  EXPECT_GE(Wins * 100, Total * 60);
}

TEST(SuiteAggregate, ReassociationHelpsOnNet) {
  uint64_t PartialTotal = 0, DistribTotal = 0;
  unsigned Degraded = 0, Counted = 0;
  for (const Routine &R : benchmarkSuite()) {
    Measurement Part = measureRoutine(R, OptLevel::Partial);
    Measurement Dist = measureRoutine(R, OptLevel::Distribution);
    if (!Part.ok() || !Dist.ok())
      continue;
    ++Counted;
    PartialTotal += Part.DynOps;
    DistribTotal += Dist.DynOps;
    if (Dist.DynOps > Part.DynOps)
      ++Degraded;
  }
  EXPECT_EQ(Counted, 50u);
  // Net win in aggregate...
  EXPECT_LT(DistribTotal, PartialTotal);
  // ...with some degradations expected (paper §4.2) but not a majority.
  EXPECT_LT(Degraded, Counted / 2);
}

TEST(SuiteProfile, DetectDegradationsFlagsHigherLevelGrowth) {
  auto Entry = [](const char *Fn, const char *Level, uint64_t Ops) {
    FunctionProfile P;
    P.Function = Fn;
    P.Level = Level;
    P.DynOps = Ops;
    return P;
  };
  ProfileDoc Doc;
  // foo degrades at distribution relative to both lower levels.
  Doc.Profiles.push_back(Entry("foo", "baseline", 100));
  Doc.Profiles.push_back(Entry("foo", "partial", 80));
  Doc.Profiles.push_back(Entry("foo", "distribution", 90));
  // bar improves monotonically: no degradation.
  Doc.Profiles.push_back(Entry("bar", "baseline", 50));
  Doc.Profiles.push_back(Entry("bar", "partial", 40));
  // Unmeasured level tags are ignored even when the counts grow.
  Doc.Profiles.push_back(Entry("foo", "none", 1));
  Doc.Profiles.push_back(Entry("bar", "custom", 9999));

  std::vector<Degradation> Degs = detectDegradations(Doc);
  ASSERT_EQ(Degs.size(), 1u);
  EXPECT_EQ(Degs[0].Routine, "foo");
  EXPECT_EQ(Degs[0].Lower, OptLevel::Partial);
  EXPECT_EQ(Degs[0].Higher, OptLevel::Distribution);
  EXPECT_EQ(Degs[0].LowerOps, 80u);
  EXPECT_EQ(Degs[0].HigherOps, 90u);

  // Equal counts are not a degradation; strictly more is.
  Doc.Profiles.push_back(Entry("bar", "reassociation", 40));
  EXPECT_EQ(detectDegradations(Doc).size(), 1u);
  Doc.Profiles.push_back(Entry("bar", "distribution", 41));
  EXPECT_EQ(detectDegradations(Doc).size(), 3u); // vs partial and reassoc
}

} // namespace
