//===- tests/fuzz_roundtrip_test.cpp - print->parse->print property -------===//
///
/// \file
/// Round-trip property over generated modules: printing a parsed module and
/// re-parsing that text must reach a textual fixpoint after one iteration,
/// and the fixpoint parses must be structurally equal. (The first print of
/// a freshly generated module may renumber registers relative to the
/// parser's first-occurrence numbering, so the property is asserted from
/// the second print onward.)
///
//===----------------------------------------------------------------------===//

#include "fuzz/FuzzGen.h"
#include "fuzz/ModuleOps.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace epre;
using namespace epre::fuzz;

namespace {

TEST(FuzzRoundTrip, PrintParsePrintReachesFixpoint) {
  for (const std::string &Shape : generatorShapeNames()) {
    GeneratorOptions GO;
    ASSERT_TRUE(shapeOptions(Shape, GO)) << Shape;
    for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
      FuzzProgram P = generateProgram(Seed, GO, Shape);

      std::string Err;
      std::unique_ptr<Module> M2 = parseModuleText(P.Text, &Err);
      ASSERT_NE(M2, nullptr)
          << Shape << " seed " << Seed << ": " << Err;
      EXPECT_TRUE(verifyModule(*M2, SSAMode::Relaxed).empty())
          << Shape << " seed " << Seed;

      std::string T2 = printModule(*M2);
      std::unique_ptr<Module> M3 = parseModuleText(T2, &Err);
      ASSERT_NE(M3, nullptr)
          << Shape << " seed " << Seed << ": " << Err;
      std::string T3 = printModule(*M3);

      EXPECT_EQ(T2, T3) << Shape << " seed " << Seed;

      std::string Why;
      EXPECT_TRUE(modulesStructurallyEqual(*M2, *M3, &Why))
          << Shape << " seed " << Seed << ": " << Why;
    }
  }
}

TEST(FuzzRoundTrip, GenerationIsDeterministic) {
  GeneratorOptions GO;
  ASSERT_TRUE(shapeOptions("branchy", GO));
  FuzzProgram A = generateProgram(42, GO, "branchy");
  FuzzProgram B = generateProgram(42, GO, "branchy");
  EXPECT_EQ(A.Text, B.Text);
  EXPECT_EQ(A.Args.size(), B.Args.size());
  FuzzProgram C = generateProgram(43, GO, "branchy");
  EXPECT_NE(A.Text, C.Text);
}

TEST(FuzzRoundTrip, CloneIsStructurallyEqual) {
  GeneratorOptions GO;
  ASSERT_TRUE(shapeOptions("phiweb", GO));
  FuzzProgram P = generateProgram(7, GO, "phiweb");
  std::unique_ptr<Module> M = parseModuleText(P.Text);
  ASSERT_NE(M, nullptr);
  std::unique_ptr<Module> C = cloneModule(*M);
  std::string Why;
  EXPECT_TRUE(modulesStructurallyEqual(*M, *C, &Why)) << Why;
}

} // namespace
