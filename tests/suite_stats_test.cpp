//===- tests/suite_stats_test.cpp - Suite-wide invariants -----------------===//
///
/// Aggregate invariants over the 50-routine corpus beyond the plain
/// differential checks: Table-2 expansion bounds, pipeline statistics
/// sanity, and differential correctness of the extension configurations
/// (strength reduction, DVNT engine).
///
//===----------------------------------------------------------------------===//

#include "suite/Harness.h"

#include <cmath>
#include <gtest/gtest.h>

using namespace epre;

namespace {

class PerRoutine : public testing::TestWithParam<unsigned> {};

std::string routineName(const testing::TestParamInfo<unsigned> &Info) {
  return benchmarkSuite()[Info.param].Name;
}

// Table 2's practical claim: forward propagation's expansion is modest
// (the paper's worst case was 2.49x; ours stays below 3x everywhere).
TEST_P(PerRoutine, ForwardPropExpansionBounded) {
  const Routine &R = benchmarkSuite()[GetParam()];
  ForwardPropStats S = measureForwardPropExpansion(R);
  ASSERT_GT(S.OpsBefore, 0u);
  EXPECT_GT(S.OpsAfter, 0u);
  EXPECT_LT(S.expansion(), 3.0) << R.Name;
  EXPECT_GE(S.expansion(), 1.0) << R.Name;
}

// The extension configurations must preserve behaviour too.
TEST_P(PerRoutine, StrengthReductionDifferential) {
  const Routine &R = benchmarkSuite()[GetParam()];
  Measurement Ref = measureRoutine(R, OptLevel::None);
  ASSERT_TRUE(Ref.ok());
  PipelineOptions PO;
  PO.Level = OptLevel::Distribution;
  PO.EnableStrengthReduction = true;
  Measurement Got = measureRoutine(R, OptLevel::Distribution, &PO);
  ASSERT_TRUE(Got.ok()) << (Got.CompileOk ? Got.TrapReason
                                          : Got.CompileError);
  ASSERT_EQ(Ref.ReturnValue.Ty, Got.ReturnValue.Ty);
  if (Ref.ReturnValue.isI())
    EXPECT_EQ(Ref.ReturnValue.I, Got.ReturnValue.I);
  else
    EXPECT_NEAR(Ref.ReturnValue.F, Got.ReturnValue.F,
                1e-8 * (1.0 + std::fabs(Ref.ReturnValue.F)));
}

TEST_P(PerRoutine, DVNTEngineDifferential) {
  const Routine &R = benchmarkSuite()[GetParam()];
  Measurement Ref = measureRoutine(R, OptLevel::None);
  ASSERT_TRUE(Ref.ok());
  PipelineOptions PO;
  PO.Level = OptLevel::Distribution;
  PO.Engine = GVNEngine::DVNT;
  Measurement Got = measureRoutine(R, OptLevel::Distribution, &PO);
  ASSERT_TRUE(Got.ok()) << (Got.CompileOk ? Got.TrapReason
                                          : Got.CompileError);
  ASSERT_EQ(Ref.ReturnValue.Ty, Got.ReturnValue.Ty);
  if (Ref.ReturnValue.isI())
    EXPECT_EQ(Ref.ReturnValue.I, Got.ReturnValue.I);
  else
    EXPECT_NEAR(Ref.ReturnValue.F, Got.ReturnValue.F,
                1e-8 * (1.0 + std::fabs(Ref.ReturnValue.F)));
}

INSTANTIATE_TEST_SUITE_P(AllRoutines, PerRoutine,
                         testing::Range(0u, 50u), routineName);

TEST(SuiteStats, PipelineStatisticsAreSane) {
  unsigned WithPhis = 0, WithPREWork = 0;
  for (const Routine &R : benchmarkSuite()) {
    Measurement M = measureRoutine(R, OptLevel::Distribution);
    ASSERT_TRUE(M.ok()) << R.Name;
    EXPECT_GT(M.Stats.opsBefore(), 0u) << R.Name;
    EXPECT_GT(M.Stats.opsAfter(), 0u) << R.Name;
    if (M.Stats.phisRemoved() > 0)
      ++WithPhis;
    if (M.Stats.preDeleted() + M.Stats.preInserted() > 0)
      ++WithPREWork;
    // GVN must always find some structure.
    EXPECT_GT(M.Stats.gvnClasses(), 0u) << R.Name;
  }
  // Every routine in this suite has loops, hence phis; PRE finds work in
  // nearly all of them.
  EXPECT_EQ(WithPhis, 50u);
  EXPECT_GE(WithPREWork, 45u);
}

TEST(SuiteStats, WeightedCostTracksOps) {
  // The weighted metric must never be less than the unweighted count
  // (every op costs at least 1... except phis, which measured code lacks).
  for (const Routine &R : benchmarkSuite()) {
    Measurement M = measureRoutine(R, OptLevel::Baseline);
    ASSERT_TRUE(M.ok()) << R.Name;
    EXPECT_GE(M.WeightedCost, M.DynOps) << R.Name;
  }
}

} // namespace
