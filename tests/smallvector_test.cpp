//===- tests/smallvector_test.cpp - SmallVector unit tests ----------------===//
///
/// Exercises the inline-storage vector the IR uses for operand and
/// successor lists: the inline/heap transition, aliasing-safe growth,
/// move semantics (heap steal vs element move), and the erase/insert
/// surface the passes rely on.
///
//===----------------------------------------------------------------------===//

#include "support/SmallVector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

using namespace epre;

namespace {

TEST(SmallVector, StaysInlineUpToCapacity) {
  SmallVector<int, 4> V;
  const void *InlineData = V.data();
  for (int I = 0; I < 4; ++I)
    V.push_back(I);
  EXPECT_EQ(V.data(), InlineData) << "no heap allocation within inline cap";
  EXPECT_EQ(V.size(), 4u);
  V.push_back(4);
  EXPECT_NE(V.data(), InlineData) << "fifth element must spill to the heap";
  for (int I = 0; I < 5; ++I)
    EXPECT_EQ(V[unsigned(I)], I);
}

TEST(SmallVector, PushBackAliasingElement) {
  // push_back(V[0]) while growing: the reference dies with the old buffer,
  // so the value must be captured first.
  SmallVector<int, 2> V;
  V.push_back(7);
  V.push_back(8);
  V.push_back(V[0]); // grows exactly here
  ASSERT_EQ(V.size(), 3u);
  EXPECT_EQ(V[2], 7);
}

TEST(SmallVector, InsertAliasingElement) {
  SmallVector<int, 2> V{1, 2};
  V.insert(V.begin(), V[1]); // grows, and the inserted value is inside V
  ASSERT_EQ(V.size(), 3u);
  EXPECT_EQ(V[0], 2);
  EXPECT_EQ(V[1], 1);
  EXPECT_EQ(V[2], 2);
}

TEST(SmallVector, EraseSingleAndRange) {
  SmallVector<int, 4> V{0, 1, 2, 3, 4, 5};
  V.erase(V.begin() + 1);
  EXPECT_EQ(V, (SmallVector<int, 4>{0, 2, 3, 4, 5}));
  V.erase(V.begin() + 1, V.begin() + 3);
  EXPECT_EQ(V, (SmallVector<int, 4>{0, 4, 5}));
}

TEST(SmallVector, MoveStealsHeapBuffer) {
  SmallVector<std::string, 2> V;
  for (int I = 0; I < 8; ++I)
    V.push_back("elem" + std::to_string(I));
  const void *HeapData = V.data();
  SmallVector<std::string, 2> W = std::move(V);
  EXPECT_EQ(W.data(), HeapData) << "move of a spilled vector steals the heap";
  ASSERT_EQ(W.size(), 8u);
  EXPECT_EQ(W[7], "elem7");
}

TEST(SmallVector, MoveOfInlineVectorMovesElements) {
  SmallVector<std::string, 4> V{"a", "b"};
  SmallVector<std::string, 4> W = std::move(V);
  ASSERT_EQ(W.size(), 2u);
  EXPECT_EQ(W[0], "a");
  EXPECT_EQ(W[1], "b");
}

TEST(SmallVector, AssignAcrossDifferentInlineSizes) {
  // Passing through SmallVectorImpl erases the inline size.
  SmallVector<int, 2> A{1, 2, 3};
  SmallVector<int, 8> B;
  SmallVectorImpl<int> &AI = A;
  B.assign(AI.begin(), AI.end());
  EXPECT_EQ(B.size(), 3u);
  EXPECT_EQ(B[2], 3);
}

TEST(SmallVector, ResizeGrowAndShrink) {
  SmallVector<int, 2> V;
  V.resize(5, 9);
  EXPECT_EQ(V.size(), 5u);
  EXPECT_EQ(V[4], 9);
  V.resize(1);
  EXPECT_EQ(V.size(), 1u);
  EXPECT_EQ(V[0], 9);
}

TEST(SmallVector, ComparisonAndIteration) {
  SmallVector<int, 2> A{1, 2, 3};
  SmallVector<int, 4> B{1, 2, 3};
  // Element-wise comparison is independent of inline capacity.
  EXPECT_TRUE(std::equal(A.begin(), A.end(), B.begin(), B.end()));
  int Sum = 0;
  for (int X : A)
    Sum += X;
  EXPECT_EQ(Sum, 6);
}

TEST(SmallVector, NonTrivialElementDestruction) {
  // Shrinking and clearing must run destructors (ASan job watches this).
  auto Probe = std::make_shared<int>(42);
  SmallVector<std::shared_ptr<int>, 2> V;
  for (int I = 0; I < 6; ++I)
    V.push_back(Probe);
  EXPECT_EQ(Probe.use_count(), 7);
  V.resize(2);
  EXPECT_EQ(Probe.use_count(), 3);
  V.clear();
  EXPECT_EQ(Probe.use_count(), 1);
}

} // namespace
