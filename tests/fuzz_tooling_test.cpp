//===- tests/fuzz_tooling_test.cpp - Oracle, bisection, reduction ---------===//
///
/// \file
/// End-to-end checks of the fuzzing toolchain against a planted miscompile:
/// dropping PRE's availability meet (union instead of intersection) must be
/// caught by the differential oracle, bisected to the 'pre' pass, and
/// reduced to a tiny reproducer — and the reproducer must still pinpoint
/// the fault (clean once the fault is disabled). Also covers the pipeline
/// prefix-execution hook's algebraic properties.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Bisect.h"
#include "fuzz/FuzzGen.h"
#include "fuzz/ModuleOps.h"
#include "fuzz/Oracle.h"
#include "fuzz/Reduce.h"
#include "ir/IRPrinter.h"
#include "pre/PRE.h"

#include <gtest/gtest.h>

using namespace epre;
using namespace epre::fuzz;

namespace {

/// RAII guard: the fault flag is process-global, so never leak it into
/// other tests.
struct FaultGuard {
  explicit FaultGuard(bool On) { fault::setPREDropAvailabilityMeet(On); }
  ~FaultGuard() { fault::setPREDropAvailabilityMeet(false); }
};

TEST(FuzzTooling, CleanMiniCampaign) {
  OracleOptions OO;
  std::vector<OracleConfig> Configs = oracleConfigs(/*Quick=*/true);
  for (const std::string &Shape : generatorShapeNames()) {
    GeneratorOptions GO;
    ASSERT_TRUE(shapeOptions(Shape, GO));
    for (uint64_t Seed = 1; Seed <= 4; ++Seed) {
      FuzzProgram P = generateProgram(Seed, GO, Shape);
      OracleResult OR = runDifferentialOracle(P, OO, Configs);
      EXPECT_FALSE(OR.Inconclusive) << Shape << " seed " << Seed;
      EXPECT_FALSE(OR.Mismatch) << Shape << " seed " << Seed;
      for (const OracleFinding &F : OR.Findings)
        ADD_FAILURE() << Shape << " seed " << Seed << " [" << F.Config
                      << "] " << F.Detail;
    }
  }
}

TEST(FuzzTooling, PlantedFaultIsCaughtBisectedAndReduced) {
  FaultGuard Fault(true);

  OracleOptions OO;
  std::vector<OracleConfig> Configs = oracleConfigs(/*Quick=*/true);
  GeneratorOptions GO;
  ASSERT_TRUE(shapeOptions("branchy", GO));

  // Scan seeds until the planted fault produces a mismatch that bisects to
  // the guilty 'pre' pass. (Some seeds surface the corruption only after a
  // later cleanup pass; a handful of seeds always contains a direct hit.)
  bool Demonstrated = false;
  for (uint64_t Seed = 1; Seed <= 40 && !Demonstrated; ++Seed) {
    FuzzProgram P = generateProgram(Seed, GO, "branchy");
    OracleResult OR = runDifferentialOracle(P, OO, Configs);
    if (!OR.Mismatch)
      continue;
    ASSERT_FALSE(OR.Findings.empty());

    OracleConfig C;
    ASSERT_TRUE(
        findOracleConfig(OR.Findings.front().Config, /*Quick=*/true, C));

    BisectResult B = bisectMiscompile(P, C, OO);
    ASSERT_TRUE(B.Bisected) << "seed " << Seed;
    EXPECT_GT(B.TotalPasses, 0u);
    EXPECT_LE(B.PrefixLength, B.TotalPasses);
    if (B.GuiltyPass != "pre")
      continue; // corruption surfaced downstream; try another seed

    ReduceResult R = reduceMiscompile(P, C, OO);
    ASSERT_TRUE(R.Reduced) << "seed " << Seed;
    EXPECT_LE(R.InstsAfter, 15u) << "seed " << Seed;
    EXPECT_LT(R.InstsAfter, R.InstsBefore);

    // The reduced program still fails with the same signature...
    FuzzProgram Q = P;
    Q.Text = R.Text;
    EXPECT_EQ(runConfigOnce(Q, C, OO).Kind, R.Signature);

    // ...and is clean once the fault is turned off, so the reproducer
    // really captures the planted bug and not a generator artifact.
    fault::setPREDropAvailabilityMeet(false);
    EXPECT_EQ(runConfigOnce(Q, C, OO).Kind, MismatchKind::None);
    fault::setPREDropAvailabilityMeet(true);

    Demonstrated = true;
  }
  EXPECT_TRUE(Demonstrated)
      << "no seed in range was caught, bisected to 'pre', and reduced";
}

TEST(FuzzTooling, PrefixZeroLeavesFunctionUntouched) {
  GeneratorOptions GO;
  ASSERT_TRUE(shapeOptions("small", GO));
  FuzzProgram P = generateProgram(5, GO, "small");

  OracleConfig C;
  ASSERT_TRUE(findOracleConfig("partial/lcm", /*Quick=*/false, C));

  std::unique_ptr<Module> M = parseModuleText(P.Text);
  ASSERT_NE(M, nullptr);
  std::string Before = printModule(*M);
  PassPrefixResult R = optimizeFunctionPrefix(*M->Functions[0], C.PO, 0);
  EXPECT_EQ(R.PassesRun, 0u);
  EXPECT_TRUE(R.Trace.empty());
  EXPECT_EQ(printModule(*M), Before);
}

TEST(FuzzTooling, FullPrefixMatchesOptimizeFunction) {
  GeneratorOptions GO;
  ASSERT_TRUE(shapeOptions("small", GO));
  OracleConfig C;
  ASSERT_TRUE(findOracleConfig("partial/lcm", /*Quick=*/false, C));

  for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
    FuzzProgram P = generateProgram(Seed, GO, "small");

    std::unique_ptr<Module> A = parseModuleText(P.Text);
    std::unique_ptr<Module> B = parseModuleText(P.Text);
    ASSERT_NE(A, nullptr);
    ASSERT_NE(B, nullptr);

    optimizeFunction(*A->Functions[0], C.PO);
    optimizeFunctionPrefix(*B->Functions[0], C.PO, ~0u);

    std::string Why;
    EXPECT_TRUE(modulesStructurallyEqual(*A, *B, &Why))
        << "seed " << Seed << ": " << Why;
  }
}

TEST(FuzzTooling, PrefixTracesArePrefixesOfTheFullTrace) {
  GeneratorOptions GO;
  ASSERT_TRUE(shapeOptions("small", GO));
  FuzzProgram P = generateProgram(9, GO, "small");
  OracleConfig C;
  ASSERT_TRUE(findOracleConfig("partial/lcm", /*Quick=*/false, C));

  std::unique_ptr<Module> Full = parseModuleText(P.Text);
  ASSERT_NE(Full, nullptr);
  PassPrefixResult FullR =
      optimizeFunctionPrefix(*Full->Functions[0], C.PO, ~0u);
  ASSERT_GT(FullR.PassesRun, 0u);
  EXPECT_EQ(FullR.PassesRun, FullR.Trace.size());

  for (unsigned N = 1; N <= FullR.PassesRun; ++N) {
    std::unique_ptr<Module> M = parseModuleText(P.Text);
    ASSERT_NE(M, nullptr);
    PassPrefixResult R = optimizeFunctionPrefix(*M->Functions[0], C.PO, N);
    EXPECT_EQ(R.PassesRun, N);
    ASSERT_EQ(R.Trace.size(), N);
    for (unsigned I = 0; I < N; ++I)
      EXPECT_EQ(R.Trace[I], FullR.Trace[I]) << "prefix " << N;
  }
}

} // namespace
