//===- tests/TestUtil.h - Shared test helpers --------------------*- C++ -*-===//
///
/// \file
/// Helpers shared by the test suite: compile Mini-FORTRAN, run pipelines,
/// interpret, and compare observable behaviour across optimization levels.
///
//===----------------------------------------------------------------------===//

#ifndef EPRE_TESTS_TESTUTIL_H
#define EPRE_TESTS_TESTUTIL_H

#include "analysis/AnalysisManager.h"
#include "frontend/Lower.h"
#include "instrument/PassInstrumentation.h"
#include "interp/Interpreter.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "pipeline/Pipeline.h"

#include <gtest/gtest.h>

namespace epre::test {

/// The front-end naming mode each optimization level is measured with in
/// the paper's experiment: PRE-only needs the hashed discipline; the
/// reassociation levels build their own naming and take naive input.
inline NamingMode namingFor(OptLevel L) {
  return L == OptLevel::Partial ? NamingMode::Hashed : NamingMode::Naive;
}

/// Runs a pass class on \p F with a fresh analysis manager and a quiet
/// context, returning the pass object so callers can read lastStats().
template <typename PassT> PassT runPass(Function &F, PassT P = PassT()) {
  FunctionAnalysisManager AM(F);
  StatsRegistry SR;
  PassContext Ctx(&SR);
  P.run(F, AM, Ctx);
  return P;
}

/// Runs a pass class on \p F and returns one of its counters — the
/// replacement for the removed bool/count-returning free functions
/// (e.g. runPassStat<DCEPass>(F, "changed")).
template <typename PassT>
uint64_t runPassStat(Function &F, const char *Counter, PassT P = PassT()) {
  FunctionAnalysisManager AM(F);
  StatsRegistry SR;
  PassContext Ctx(&SR);
  P.run(F, AM, Ctx);
  return SR.get(PassT::name(), Counter);
}

/// Observable outcome of one run.
struct Outcome {
  ExecResult Exec;
  uint64_t MemHash = 0;
};

/// Compiles \p Source, optimizes \p FnName at \p Level, and interprets it
/// on \p Args with a fresh memory image sized for the routine's local
/// arrays (plus \p ExtraMem bytes). Fails the current test on any error.
inline Outcome compileOptimizeRun(const std::string &Source,
                                  const std::string &FnName,
                                  const std::vector<RtValue> &Args,
                                  OptLevel Level, size_t ExtraMem = 0,
                                  PipelineStats *StatsOut = nullptr) {
  Outcome O;
  LowerResult LR = compileMiniFortran(Source, namingFor(Level));
  EXPECT_TRUE(LR.ok()) << LR.Error;
  if (!LR.ok())
    return O;
  Function *F = LR.M->find(FnName);
  EXPECT_NE(F, nullptr) << "no function " << FnName;
  if (!F)
    return O;

  std::vector<std::string> Errors = verifyFunction(*F, SSAMode::NoSSA);
  EXPECT_TRUE(Errors.empty()) << "frontend produced invalid IR: "
                              << Errors.front() << "\n" << printFunction(*F);

  PipelineOptions PO;
  PO.Level = Level;
  PipelineStats Stats = optimizeFunction(*F, PO);
  if (StatsOut)
    *StatsOut = Stats;

  size_t LocalBytes = 0;
  for (const RoutineInfo &RI : LR.Routines)
    if (RI.Name == FnName)
      LocalBytes = RI.LocalMemBytes;
  MemoryImage Mem(LocalBytes + ExtraMem);
  O.Exec = interpret(*F, Args, Mem);
  EXPECT_TRUE(O.Exec.ok()) << "trap: " << O.Exec.TrapReason << "\n"
                           << printFunction(*F);
  O.MemHash = Mem.hash();
  return O;
}

/// Asserts that every optimization level computes the same result as the
/// unoptimized program (bit-exact except for the reassociating levels on
/// F64 results, which are compared with a relative tolerance — FORTRAN
/// permits the reordering).
inline void expectAllLevelsAgree(const std::string &Source,
                                 const std::string &FnName,
                                 const std::vector<RtValue> &Args,
                                 size_t ExtraMem = 0) {
  Outcome Ref = compileOptimizeRun(Source, FnName, Args, OptLevel::None,
                                   ExtraMem);
  for (OptLevel L : {OptLevel::Baseline, OptLevel::Partial,
                     OptLevel::Reassociation, OptLevel::Distribution}) {
    Outcome Got = compileOptimizeRun(Source, FnName, Args, L, ExtraMem);
    if (!Ref.Exec.ok() || !Got.Exec.ok())
      return;
    bool Reassoc =
        L == OptLevel::Reassociation || L == OptLevel::Distribution;
    ASSERT_EQ(Ref.Exec.HasReturn, Got.Exec.HasReturn) << optLevelName(L);
    if (Ref.Exec.HasReturn) {
      ASSERT_EQ(Ref.Exec.ReturnValue.Ty, Got.Exec.ReturnValue.Ty)
          << optLevelName(L);
      if (Ref.Exec.ReturnValue.isI()) {
        EXPECT_EQ(Ref.Exec.ReturnValue.I, Got.Exec.ReturnValue.I)
            << optLevelName(L);
      } else if (Reassoc) {
        EXPECT_NEAR(Ref.Exec.ReturnValue.F, Got.Exec.ReturnValue.F,
                    1e-9 * (1.0 + std::abs(Ref.Exec.ReturnValue.F)))
            << optLevelName(L);
      } else {
        EXPECT_EQ(Ref.Exec.ReturnValue.F, Got.Exec.ReturnValue.F)
            << optLevelName(L);
      }
    }
    if (!Reassoc) {
      EXPECT_EQ(Ref.MemHash, Got.MemHash) << optLevelName(L);
    }
    // An optimization level must never slow the program down on these
    // deterministic runs... but the paper documents occasional degradation
    // (§4.2), so only check that the dynamic count stayed in the ballpark.
    EXPECT_LE(Got.Exec.DynOps, Ref.Exec.DynOps * 2 + 64) << optLevelName(L);
  }
}

} // namespace epre::test

#endif // EPRE_TESTS_TESTUTIL_H
