//===- tests/pipeline_smoke_test.cpp - End-to-end pipeline checks ---------===//
///
/// End-to-end checks on the paper's running example (Figure 2) and small
/// companions: all optimization levels must preserve behaviour, and the
/// stronger levels must not be slower than the weaker ones on these
/// loop-dominated programs.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace epre;
using namespace epre::test;

namespace {

// Figure 2 of the paper.
const char *FooSource = R"(
function foo(y, z)
  s = 0
  x = y + z
  do i = x, 100
    s = i + s + x
  end do
  return s
end
)";

TEST(PipelineSmoke, Figure2AllLevelsAgree) {
  expectAllLevelsAgree(FooSource, "foo",
                       {RtValue::ofF(1.0), RtValue::ofF(2.0)});
  expectAllLevelsAgree(FooSource, "foo",
                       {RtValue::ofF(-3.5), RtValue::ofF(2.0)});
  expectAllLevelsAgree(FooSource, "foo",
                       {RtValue::ofF(200.0), RtValue::ofF(10.0)}); // zero-trip
}

TEST(PipelineSmoke, Figure2ReassociationBeatsBaseline) {
  std::vector<RtValue> Args = {RtValue::ofF(1.0), RtValue::ofF(2.0)};
  Outcome Base = compileOptimizeRun(FooSource, "foo", Args,
                                    OptLevel::Baseline);
  Outcome Rea = compileOptimizeRun(FooSource, "foo", Args,
                                   OptLevel::Reassociation);
  ASSERT_TRUE(Base.Exec.ok() && Rea.Exec.ok());
  // The loop executes ~98 iterations; hoisting the invariant x out of the
  // loop body must shorten the dynamic schedule.
  EXPECT_LT(Rea.Exec.DynOps, Base.Exec.DynOps);
}

TEST(PipelineSmoke, LoopInvariantHoisting) {
  const char *Src = R"(
function hoist(a, b, n)
  s = 0.0
  do i = 1, n
    s = s + (a + b) * (a + b)
  end do
  return s
end
)";
  std::vector<RtValue> Args = {RtValue::ofF(1.5), RtValue::ofF(2.5),
                               RtValue::ofI(1000)};
  expectAllLevelsAgree(Src, "hoist", Args);

  Outcome Base = compileOptimizeRun(Src, "hoist", Args, OptLevel::Baseline);
  Outcome Part = compileOptimizeRun(Src, "hoist", Args, OptLevel::Partial);
  ASSERT_TRUE(Base.Exec.ok() && Part.Exec.ok());
  // PRE alone already hoists the lexically repeated (a+b)*(a+b).
  EXPECT_LT(Part.Exec.DynOps, Base.Exec.DynOps);
}

TEST(PipelineSmoke, IfThenElseRedundancy) {
  // The motivating example of §2: x+y on both sides of a branch and again
  // at the join. PRE removes the join computation.
  const char *Src = R"(
function joinred(x, y, p)
  integer p
  if (p .gt. 0) then
    a = x + y
  else
    b = x + y
  end if
  c = x + y
  return a + b + c
end
)";
  for (long long P : {-1LL, 0LL, 1LL})
    expectAllLevelsAgree(Src, "joinred",
                         {RtValue::ofF(2.0), RtValue::ofF(3.0),
                          RtValue::ofI(P)});
}

TEST(PipelineSmoke, ArrayKernelAllLevels) {
  const char *Src = R"(
function asum(n)
  integer n
  real w(64)
  do i = 1, n
    w(i) = i * 2.0
  end do
  s = 0.0
  do i = 1, n
    s = s + w(i)
  end do
  return s
end
)";
  expectAllLevelsAgree(Src, "asum", {RtValue::ofI(64)});
  expectAllLevelsAgree(Src, "asum", {RtValue::ofI(1)});
  expectAllLevelsAgree(Src, "asum", {RtValue::ofI(0)});
}

TEST(PipelineSmoke, TwoDimensionalArray) {
  const char *Src = R"(
function mat2(n)
  integer n
  real m(8,8)
  do j = 1, n
    do i = 1, n
      m(i,j) = i + j * 10.0
    end do
  end do
  s = 0.0
  do j = 1, n
    do i = 1, n
      s = s + m(i,j)
    end do
  end do
  return s
end
)";
  expectAllLevelsAgree(Src, "mat2", {RtValue::ofI(8)});
  expectAllLevelsAgree(Src, "mat2", {RtValue::ofI(3)});
}

TEST(PipelineSmoke, WhileAndIntrinsics) {
  const char *Src = R"(
function newton(a)
  x = a
  while (abs(x * x - a) .gt. 1.0e-9)
    x = 0.5 * (x + a / x)
  end while
  return x
end
)";
  expectAllLevelsAgree(Src, "newton", {RtValue::ofF(2.0)});
  expectAllLevelsAgree(Src, "newton", {RtValue::ofF(49.0)});
}

} // namespace
