//===- tests/parser_test.cpp - Textual IR printer/parser ------------------===//

#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace epre;

namespace {

const char *Sample = R"(
func @f(%a:i64, %b:f64) -> f64 {
^entry:
  %c:i64 = loadi 42
  %d:i64 = add %a, %c
  %e:f64 = i2f %d
  %g:f64 = mul %e, %b
  %h:f64 = call sqrt(%g)
  cbr %d, ^then, ^else
^then:
  %i:f64 = loadf 1.5
  store %i -> %d
  br ^join
^else:
  %j:f64 = load %d
  br ^join
^join:
  %k:f64 = phi [%h, ^then], [%j, ^else]
  ret %k
}
)";

TEST(Parser, ParsesSample) {
  ParseResult R = parseModule(Sample);
  ASSERT_TRUE(R.ok()) << R.Error;
  ASSERT_EQ(R.M->Functions.size(), 1u);
  Function &F = *R.M->Functions[0];
  EXPECT_EQ(F.name(), "f");
  EXPECT_EQ(F.params().size(), 2u);
  ASSERT_TRUE(F.returnType().has_value());
  EXPECT_EQ(*F.returnType(), Type::F64);
  EXPECT_EQ(F.numBlocks(), 4u);
  EXPECT_TRUE(verifyFunction(F).empty());
}

TEST(Parser, RoundTripIsStable) {
  ParseResult R1 = parseModule(Sample);
  ASSERT_TRUE(R1.ok()) << R1.Error;
  std::string P1 = printModule(*R1.M);
  ParseResult R2 = parseModule(P1);
  ASSERT_TRUE(R2.ok()) << R2.Error;
  std::string P2 = printModule(*R2.M);
  // Printing a parse of printed output must be a fixed point.
  EXPECT_EQ(P1, P2);
}

TEST(Parser, FloatRoundTrip) {
  const char *Src = R"(
func @g() -> f64 {
^e:
  %a:f64 = loadf 0.1
  %b:f64 = loadf -1.5e-300
  %c:f64 = loadf 3.0
  %d:f64 = add %a, %b
  %e2:f64 = add %d, %c
  ret %e2
}
)";
  ParseResult R = parseModule(Src);
  ASSERT_TRUE(R.ok()) << R.Error;
  const BasicBlock *B = R.M->Functions[0]->entry();
  EXPECT_EQ(B->Insts[0].FImm, 0.1);
  EXPECT_EQ(B->Insts[1].FImm, -1.5e-300);
  std::string P1 = printModule(*R.M);
  ParseResult R2 = parseModule(P1);
  ASSERT_TRUE(R2.ok()) << R2.Error;
  EXPECT_EQ(R2.M->Functions[0]->entry()->Insts[0].FImm, 0.1);
}

TEST(Parser, ForwardBlockReferences) {
  const char *Src = R"(
func @h(%p:i64) {
^a:
  cbr %p, ^c, ^b
^b:
  br ^c
^c:
  ret
}
)";
  ParseResult R = parseModule(Src);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_TRUE(verifyFunction(*R.M->Functions[0]).empty());
}

TEST(Parser, ErrorUnknownOpcode) {
  ParseResult R = parseModule("func @f() {\n^e:\n  %a:i64 = frob 1\n  ret\n}");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("frob"), std::string::npos);
}

TEST(Parser, ErrorUndefinedRegister) {
  ParseResult R = parseModule("func @f() {\n^e:\n  ret %x\n}");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("never defined"), std::string::npos);
}

TEST(Parser, ErrorUnknownBlock) {
  ParseResult R = parseModule("func @f() {\n^e:\n  br ^nowhere\n}");
  EXPECT_FALSE(R.ok());
}

TEST(Parser, ErrorDuplicateLabel) {
  ParseResult R =
      parseModule("func @f() {\n^e:\n  ret\n^e:\n  ret\n}");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("duplicate"), std::string::npos);
}

TEST(Parser, CommentsAndWhitespace) {
  const char *Src = R"(
; leading comment
func @f() -> i64 {   ; trailing comment
^e:
  %a:i64 = loadi 7   ; the meaning of life, minus 35
  ret %a
}
)";
  ParseResult R = parseModule(Src);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.M->Functions[0]->entry()->Insts[0].IImm, 7);
}

TEST(Parser, MultipleFunctions) {
  const char *Src = R"(
func @a() { ^e: ret }
func @b() { ^e: ret }
)";
  ParseResult R = parseModule(Src);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.M->Functions.size(), 2u);
  EXPECT_NE(R.M->find("a"), nullptr);
  EXPECT_NE(R.M->find("b"), nullptr);
  EXPECT_EQ(R.M->find("c"), nullptr);
}

TEST(Parser, ComparisonTypeInferred) {
  const char *Src = R"(
func @f(%x:f64, %y:f64) -> i64 {
^e:
  %c:i64 = cmplt %x, %y
  ret %c
}
)";
  ParseResult R = parseModule(Src);
  ASSERT_TRUE(R.ok()) << R.Error;
  const Instruction &Cmp = R.M->Functions[0]->entry()->Insts[0];
  EXPECT_EQ(Cmp.Ty, Type::F64); // operand type
  EXPECT_TRUE(verifyFunction(*R.M->Functions[0]).empty());
}

} // namespace
