//===- tests/ssa_test.cpp - SSA construction/destruction, parallel copies -===//

#include "interp/Interpreter.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "ssa/ParallelCopy.h"
#include "ssa/SSA.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace epre;
using epre::test::runPass;

namespace {

std::unique_ptr<Module> parse(const char *Src) {
  ParseResult R = parseModule(Src);
  EXPECT_TRUE(R.ok()) << R.Error;
  return std::move(R.M);
}

unsigned countPhis(const Function &F) {
  unsigned N = 0;
  F.forEachBlock([&](const BasicBlock &B) { N += B.firstNonPhi(); });
  return N;
}

unsigned countCopies(const Function &F) {
  unsigned N = 0;
  F.forEachBlock([&](const BasicBlock &B) {
    for (const Instruction &I : B.Insts)
      N += I.isCopy();
  });
  return N;
}

// A loop accumulating into two variables.
const char *LoopSrc = R"(
func @f(%n:i64) -> i64 {
^e:
  %s:i64 = loadi 0
  %i:i64 = loadi 0
  br ^l
^l:
  %s:i64 = add %s, %i
  %one:i64 = loadi 1
  %i:i64 = add %i, %one
  %c:i64 = cmplt %i, %n
  cbr %c, ^l, ^x
^x:
  ret %s
}
)";

ExecResult run(const Function &F, int64_t N) {
  MemoryImage Mem(0);
  return interpret(F, {RtValue::ofI(N)}, Mem);
}

TEST(SSA, BuildsValidSSA) {
  auto M = parse(LoopSrc);
  Function &F = *M->Functions[0];
  SSAInfo Info = runPass(F, SSABuildPass()).lastInfo();
  EXPECT_TRUE(verifyFunction(F, SSAMode::SSA).empty())
      << printFunction(F);
  // s and i each need a phi at the loop header.
  EXPECT_EQ(Info.NumPhis, 2u);
  EXPECT_EQ(countPhis(F), 2u);
}

TEST(SSA, CopyFoldingRemovesCopies) {
  const char *Src = R"(
func @f(%x:i64) -> i64 {
^e:
  %a:i64 = copy %x
  %b:i64 = copy %a
  %c:i64 = add %b, %b
  ret %c
}
)";
  auto M = parse(Src);
  Function &F = *M->Functions[0];
  SSAInfo Info = runPass(F, SSABuildPass()).lastInfo();
  EXPECT_EQ(Info.NumCopiesFolded, 2u);
  EXPECT_EQ(countCopies(F), 0u);
  // The add must now reference the parameter directly.
  bool Found = false;
  F.forEachBlock([&](const BasicBlock &B) {
    for (const Instruction &I : B.Insts)
      if (I.Op == Opcode::Add) {
        EXPECT_EQ(I.Operands[0], F.params()[0]);
        Found = true;
      }
  });
  EXPECT_TRUE(Found);
}

TEST(SSA, PruningSuppressesDeadPhis) {
  // v is assigned on both arms but never used after the join: a pruned
  // build places no phi for it.
  const char *Src = R"(
func @f(%p:i64) -> i64 {
^e:
  cbr %p, ^a, ^b
^a:
  %v:i64 = loadi 1
  br ^j
^b:
  %v:i64 = loadi 2
  br ^j
^j:
  %r:i64 = loadi 9
  ret %r
}
)";
  auto M = parse(Src);
  Function &F = *M->Functions[0];
  SSAOptions Pruned;
  Pruned.Pruned = true;
  runPass(F, SSABuildPass(Pruned));
  EXPECT_EQ(countPhis(F), 0u);

  auto M2 = parse(Src);
  Function &F2 = *M2->Functions[0];
  SSAOptions Minimal;
  Minimal.Pruned = false;
  runPass(F2, SSABuildPass(Minimal));
  EXPECT_EQ(countPhis(F2), 1u); // minimal SSA still places it
}

TEST(SSA, RoundTripPreservesBehaviour) {
  for (int64_t N : {0, 1, 2, 17, 100}) {
    auto M = parse(LoopSrc);
    Function &F = *M->Functions[0];
    ExecResult Before = run(F, N);
    runPass(F, SSABuildPass());
    ExecResult Mid = run(F, N);
    runPass(F, SSADestroyPass());
    EXPECT_TRUE(verifyFunction(F, SSAMode::NoSSA).empty())
        << printFunction(F);
    ExecResult After = run(F, N);
    ASSERT_FALSE(Before.Trapped || Mid.Trapped || After.Trapped);
    EXPECT_EQ(Before.ReturnValue.I, Mid.ReturnValue.I) << "N=" << N;
    EXPECT_EQ(Before.ReturnValue.I, After.ReturnValue.I) << "N=" << N;
  }
}

TEST(SSA, UndefinedUseGetsZeroInit) {
  // %v is used before any definition on the p=0 path; SSA construction
  // must zero-initialize rather than crash, and the interpreter semantics
  // (registers start at 0) must be preserved.
  const char *Src = R"(
func @f(%p:i64) -> i64 {
^e:
  cbr %p, ^a, ^j
^a:
  %v:i64 = loadi 7
  br ^j
^j:
  ret %v
}
)";
  auto M = parse(Src);
  Function &F = *M->Functions[0];
  ExecResult R0 = run(F, 0), R1 = run(F, 1);
  runPass(F, SSABuildPass());
  EXPECT_TRUE(verifyFunction(F, SSAMode::SSA).empty())
      << printFunction(F);
  ExecResult S0 = run(F, 0), S1 = run(F, 1);
  EXPECT_EQ(R0.ReturnValue.I, S0.ReturnValue.I);
  EXPECT_EQ(R1.ReturnValue.I, S1.ReturnValue.I);
}

TEST(ParallelCopy, IndependentCopies) {
  Function F("f");
  Reg A = F.makeReg(Type::I64), B = F.makeReg(Type::I64);
  Reg X = F.makeReg(Type::I64), Y = F.makeReg(Type::I64);
  std::vector<Instruction> Seq =
      sequenceParallelCopies(F, {{A, X}, {B, Y}});
  EXPECT_EQ(Seq.size(), 2u);
}

TEST(ParallelCopy, SelfCopyDropped) {
  Function F("f");
  Reg A = F.makeReg(Type::I64);
  std::vector<Instruction> Seq = sequenceParallelCopies(F, {{A, A}});
  EXPECT_TRUE(Seq.empty());
}

TEST(ParallelCopy, ChainOrdered) {
  // {a<-b, b<-c}: must emit a<-b before b<-c.
  Function F("f");
  Reg A = F.makeReg(Type::I64), B = F.makeReg(Type::I64),
      C = F.makeReg(Type::I64);
  std::vector<Instruction> Seq =
      sequenceParallelCopies(F, {{B, C}, {A, B}});
  ASSERT_EQ(Seq.size(), 2u);
  EXPECT_EQ(Seq[0].Dst, A);
  EXPECT_EQ(Seq[1].Dst, B);
}

TEST(ParallelCopy, SwapNeedsTemp) {
  // {a<-b, b<-a}: a cycle; a temporary must break it.
  Function F("f");
  Reg A = F.makeReg(Type::I64), B = F.makeReg(Type::I64);
  unsigned RegsBefore = F.numRegs();
  std::vector<Instruction> Seq =
      sequenceParallelCopies(F, {{A, B}, {B, A}});
  ASSERT_EQ(Seq.size(), 3u);
  EXPECT_GT(F.numRegs(), RegsBefore);
  // Simulate to confirm the swap.
  std::map<Reg, int> Val = {{A, 1}, {B, 2}};
  for (const Instruction &I : Seq)
    Val[I.Dst] = Val[I.Operands[0]];
  EXPECT_EQ(Val[A], 2);
  EXPECT_EQ(Val[B], 1);
}

TEST(ParallelCopy, ThreeCycle) {
  Function F("f");
  Reg A = F.makeReg(Type::I64), B = F.makeReg(Type::I64),
      C = F.makeReg(Type::I64);
  std::vector<Instruction> Seq =
      sequenceParallelCopies(F, {{A, B}, {B, C}, {C, A}});
  std::map<Reg, int> Val = {{A, 1}, {B, 2}, {C, 3}};
  for (const Instruction &I : Seq)
    Val[I.Dst] = Val[I.Operands[0]];
  EXPECT_EQ(Val[A], 2);
  EXPECT_EQ(Val[B], 3);
  EXPECT_EQ(Val[C], 1);
}

TEST(SSA, DestroySwapLoop) {
  // A loop swapping two variables each iteration: destruction must use a
  // temporary, and behaviour must be identical.
  const char *Src = R"(
func @f(%n:i64) -> i64 {
^e:
  %a:i64 = loadi 1
  %b:i64 = loadi 2
  %i:i64 = loadi 0
  br ^l
^l:
  %t:i64 = copy %a
  %a:i64 = copy %b
  %b:i64 = copy %t
  %one:i64 = loadi 1
  %i:i64 = add %i, %one
  %c:i64 = cmplt %i, %n
  cbr %c, ^l, ^x
^x:
  %h:i64 = loadi 10
  %r:i64 = mul %a, %h
  %r2:i64 = add %r, %b
  ret %r2
}
)";
  for (int64_t N : {0, 1, 2, 3, 7}) {
    auto M = parse(Src);
    Function &F = *M->Functions[0];
    ExecResult Before = run(F, N);
    runPass(F, SSABuildPass());
    runPass(F, SSADestroyPass());
    ExecResult After = run(F, N);
    ASSERT_FALSE(Before.Trapped || After.Trapped);
    EXPECT_EQ(Before.ReturnValue.I, After.ReturnValue.I) << "N=" << N;
  }
}

} // namespace
