//===- tests/property_test.cpp - Random-program differential testing ------===//
///
/// Generates random (but trap-free by construction) Mini-FORTRAN programs
/// and checks that every optimization level computes the same result as
/// the unoptimized program. This is the library's strongest safety net:
/// each seed exercises arbitrary combinations of loops, branches, array
/// traffic, and mixed-type arithmetic through the entire pipeline.
///
//===----------------------------------------------------------------------===//

#include "frontend/Lower.h"
#include "interp/Interpreter.h"
#include "ir/IRPrinter.h"
#include "pipeline/Pipeline.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

using namespace epre;

namespace {

class ProgramGenerator {
public:
  explicit ProgramGenerator(unsigned Seed) : Rng(Seed) {}

  std::string generate() {
    Src = "function rnd(p1, p2, k1)\n";
    Src += "  real p1, p2\n";
    Src += "  integer k1\n";
    Src += "  real arr(16)\n";
    // Seed the scalars.
    for (unsigned I = 0; I < NumReal; ++I)
      line(realVar(I) + " = " + realLit());
    for (unsigned I = 0; I < NumInt; ++I)
      line(intVar(I) + " = " + std::to_string(int(Rng() % 7)));
    line("do i0 = 1, 16");
    line("  arr(i0) = i0 * 0.5");
    line("end do");

    unsigned Stmts = 4 + Rng() % 10;
    for (unsigned I = 0; I < Stmts; ++I)
      statement(1);

    // Observe everything.
    std::string Sum = "p1";
    for (unsigned I = 0; I < NumReal; ++I)
      Sum += " + " + realVar(I);
    for (unsigned I = 0; I < NumInt; ++I)
      Sum += " + real(" + intVar(I) + ")";
    line("t9 = 0.0");
    line("do i0 = 1, 16");
    line("  t9 = t9 + arr(i0)");
    line("end do");
    line("return " + Sum + " + t9");
    Src += "end\n";
    return Src;
  }

private:
  static constexpr unsigned NumReal = 4;
  static constexpr unsigned NumInt = 3;

  std::string realVar(unsigned I) { return "v" + std::to_string(I); }
  std::string intVar(unsigned I) { return "m" + std::to_string(I); }

  std::string realLit() {
    return std::to_string((int(Rng() % 200) - 100)) + ".0e-1";
  }

  void line(const std::string &S) {
    for (unsigned I = 0; I < Depth; ++I)
      Src += "  ";
    Src += "  " + S + "\n";
  }

  /// A value expression of bounded depth that cannot trap.
  std::string realExpr(unsigned D) {
    switch (Rng() % (D == 0 ? 3 : 8)) {
    case 0:
      return realLit();
    case 1:
      return realVar(Rng() % NumReal);
    case 2:
      return Rng() % 2 ? "p1" : "p2";
    case 3:
      return "(" + realExpr(D - 1) + " + " + realExpr(D - 1) + ")";
    case 4:
      return "(" + realExpr(D - 1) + " - " + realExpr(D - 1) + ")";
    case 5:
      return "(" + realExpr(D - 1) + " * " + realLit() + ")";
    case 6:
      return "(" + realExpr(D - 1) + " / (abs(" + realExpr(D - 1) +
             ") + 1.0))";
    default:
      return "arr(mod(iabs(" + intExpr(D - 1) + "), 16) + 1)";
    }
  }

  std::string intExpr(unsigned D) {
    switch (Rng() % (D == 0 ? 3 : 6)) {
    case 0:
      return std::to_string(int(Rng() % 9));
    case 1:
    case 2:
      return intVar(Rng() % NumInt);
    case 3:
      return "(" + intExpr(D - 1) + " + " + intExpr(D - 1) + ")";
    case 4:
      return "(" + intExpr(D - 1) + " * " + std::to_string(int(Rng() % 4)) +
             ")";
    default:
      return "mod(" + intExpr(D - 1) + ", 13)";
    }
  }

  std::string condition() {
    const char *Ops[] = {" .lt. ", " .le. ", " .gt. ", " .ge. ", " .eq. ",
                         " .ne. "};
    if (Rng() % 2)
      return realExpr(1) + Ops[Rng() % 6] + realExpr(1);
    return intExpr(1) + Ops[Rng() % 6] + intExpr(1);
  }

  void statement(unsigned Budget) {
    switch (Rng() % 8) {
    case 0:
    case 1:
    case 2: // real assignment
      line(realVar(Rng() % NumReal) + " = " + realExpr(2));
      return;
    case 3: // int assignment
      line(intVar(Rng() % NumInt) + " = " + intExpr(2));
      return;
    case 4: // array store with a safe index
      line("arr(mod(iabs(" + intExpr(1) + "), 16) + 1) = " + realExpr(2));
      return;
    case 5: { // if/else
      line("if (" + condition() + ") then");
      ++Depth;
      statement(0);
      if (Budget)
        statement(0);
      --Depth;
      if (Rng() % 2) {
        line("else");
        ++Depth;
        statement(0);
        --Depth;
      }
      line("end if");
      return;
    }
    case 6: { // counted loop; induction variable unique per nesting level
      if (LoopDepth >= 3) {
        line(realVar(Rng() % NumReal) + " = " + realExpr(2));
        return;
      }
      std::string IV = "i" + std::to_string(++LoopDepth);
      line("do " + IV + " = 1, " + std::to_string(2 + Rng() % 6));
      ++Depth;
      statement(0);
      if (Budget)
        statement(0);
      --Depth;
      --LoopDepth;
      line("end do");
      return;
    }
    default: // accumulation (the PRE-friendly pattern)
      line(realVar(Rng() % NumReal) + " = " + realVar(Rng() % NumReal) +
           " + " + realExpr(1));
      return;
    }
  }

  std::mt19937 Rng;
  std::string Src;
  unsigned Depth = 0;
  unsigned LoopDepth = 0;
};

struct RunResult {
  bool Ok = false;
  double Value = 0;
  uint64_t Ops = 0;
  std::string Why;
};

RunResult runAt(const std::string &Src, OptLevel L) {
  RunResult RR;
  NamingMode NM =
      L == OptLevel::Partial ? NamingMode::Hashed : NamingMode::Naive;
  LowerResult LR = compileMiniFortran(Src, NM);
  if (!LR.ok()) {
    RR.Why = "compile: " + LR.Error;
    return RR;
  }
  Function *F = LR.M->find("rnd");
  if (!F) {
    RR.Why = "missing function";
    return RR;
  }
  PipelineOptions PO;
  PO.Level = L;
  optimizeFunction(*F, PO);
  MemoryImage Mem(LR.Routines[0].LocalMemBytes);
  ExecResult E = interpret(
      F[0], {RtValue::ofF(1.25), RtValue::ofF(-0.75), RtValue::ofI(3)}, Mem);
  if (E.Trapped) {
    RR.Why = "trap: " + E.TrapReason + "\n" + printFunction(*F);
    return RR;
  }
  RR.Ok = true;
  RR.Value = E.ReturnValue.F;
  RR.Ops = E.DynOps;
  return RR;
}

class RandomPrograms : public testing::TestWithParam<unsigned> {};

TEST_P(RandomPrograms, AllLevelsAgree) {
  ProgramGenerator Gen(GetParam());
  std::string Src = Gen.generate();
  SCOPED_TRACE(Src);

  RunResult Ref = runAt(Src, OptLevel::None);
  ASSERT_TRUE(Ref.Ok) << Ref.Why;

  for (OptLevel L : {OptLevel::Baseline, OptLevel::Partial,
                     OptLevel::Reassociation, OptLevel::Distribution}) {
    RunResult Got = runAt(Src, L);
    ASSERT_TRUE(Got.Ok) << optLevelName(L) << ": " << Got.Why;
    bool Reassoc =
        L == OptLevel::Reassociation || L == OptLevel::Distribution;
    if (Reassoc) {
      EXPECT_NEAR(Ref.Value, Got.Value,
                  1e-6 * (1.0 + std::fabs(Ref.Value)))
          << optLevelName(L);
    } else {
      EXPECT_EQ(Ref.Value, Got.Value) << optLevelName(L);
    }
    // No catastrophic slowdowns.
    EXPECT_LE(Got.Ops, Ref.Ops + Ref.Ops / 2 + 128) << optLevelName(L);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms, testing::Range(0u, 60u));

/// Optimizes one copy of the program with the analysis cache enabled and
/// one with every lookup forced to recompute. The manager must be purely
/// a cache: the printed IR has to match byte for byte.
std::string optimizeAndPrint(const std::string &Src, OptLevel L,
                             bool DisableCache) {
  NamingMode NM =
      L == OptLevel::Partial ? NamingMode::Hashed : NamingMode::Naive;
  LowerResult LR = compileMiniFortran(Src, NM);
  if (!LR.ok())
    return "compile error: " + LR.Error;
  Function *F = LR.M->find("rnd");
  if (!F)
    return "missing function";
  PipelineOptions PO;
  PO.Level = L;
  PO.DisableAnalysisCache = DisableCache;
  optimizeFunction(*F, PO);
  return printFunction(*F);
}

class CachedAnalyses : public testing::TestWithParam<unsigned> {};

TEST_P(CachedAnalyses, CachedMatchesFresh) {
  ProgramGenerator Gen(GetParam());
  std::string Src = Gen.generate();
  SCOPED_TRACE(Src);

  for (OptLevel L : {OptLevel::Baseline, OptLevel::Partial,
                     OptLevel::Reassociation, OptLevel::Distribution}) {
    std::string Cached = optimizeAndPrint(Src, L, /*DisableCache=*/false);
    std::string Fresh = optimizeAndPrint(Src, L, /*DisableCache=*/true);
    EXPECT_EQ(Cached, Fresh) << optLevelName(L);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CachedAnalyses, testing::Range(0u, 30u));

} // namespace
