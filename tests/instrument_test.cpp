//===- tests/instrument_test.cpp - Pass instrumentation layer -------------===//
///
/// Covers the observability subsystem end to end: callback ordering and
/// nesting, the hierarchical timer tree, the stats registry, remark
/// filtering and the golden remark text on the paper's running example,
/// changed-IR snapshot gating, option validation and the name/parse
/// round-trips, the statsJSON schema, and serial/parallel determinism of
/// the merged instrumentation.
///
//===----------------------------------------------------------------------===//

#include "frontend/Lower.h"
#include "instrument/JSONWriter.h"
#include "instrument/PassInstrumentation.h"
#include "instrument/Profile.h"
#include "ir/IRPrinter.h"
#include "opt/ConstantPropagation.h"
#include "pipeline/Pipeline.h"

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

using namespace epre;

namespace {

const char *FooSource = R"(
function foo(y, z)
  s = 0
  x = y + z
  do i = x, 100
    s = i + s + x
  end do
  return s
end
)";

Function *compileFoo(LowerResult &LR, NamingMode Mode) {
  LR = compileMiniFortran(FooSource, Mode);
  EXPECT_TRUE(LR.ok()) << LR.Error;
  return LR.ok() ? LR.M->find("foo") : nullptr;
}

TEST(Instrument, CallbackOrderingAndNesting) {
  LowerResult LR;
  Function *F = compileFoo(LR, NamingMode::Naive);
  ASSERT_TRUE(F);

  PassInstrumentation PI;
  std::vector<std::string> Events;
  PI.registerBeforePass([&](std::string_view Name, const Function &Fn) {
    Events.push_back("before1 " + std::string(Name) + " @" + Fn.name());
  });
  PI.registerBeforePass([&](std::string_view Name, const Function &) {
    Events.push_back("before2 " + std::string(Name));
  });
  PI.registerAfterPass([&](std::string_view Name, const Function &) {
    Events.push_back("after1 " + std::string(Name));
  });
  PI.registerAfterPass([&](std::string_view Name, const Function &) {
    Events.push_back("after2 " + std::string(Name));
  });

  PipelineOptions PO;
  PO.Level = OptLevel::Distribution;
  PO.Instr = &PI;
  optimizeFunction(*F, PO);
  ASSERT_FALSE(Events.empty());

  // Registration order within one pass boundary: before1 immediately
  // followed by before2 with the same pass name; same for after1/after2.
  for (size_t I = 0; I < Events.size(); ++I) {
    if (Events[I].rfind("before1 ", 0) == 0) {
      ASSERT_LT(I + 1, Events.size());
      std::string Name =
          Events[I].substr(8, Events[I].find(" @") - 8);
      EXPECT_EQ(Events[I + 1], "before2 " + Name);
    }
    if (Events[I].rfind("after1 ", 0) == 0) {
      ASSERT_LT(I + 1, Events.size());
      EXPECT_EQ(Events[I + 1], "after2 " + Events[I].substr(7));
    }
  }

  // Proper nesting: every before pushes, every matching after pops.
  std::vector<std::string> Stack;
  for (const std::string &E : Events) {
    if (E.rfind("before1 ", 0) == 0)
      Stack.push_back(E.substr(8, E.find(" @") - 8));
    else if (E.rfind("after1 ", 0) == 0) {
      ASSERT_FALSE(Stack.empty()) << E;
      EXPECT_EQ(Stack.back(), E.substr(7));
      Stack.pop_back();
    }
  }
  EXPECT_TRUE(Stack.empty());

  // The pipeline root scope brackets everything.
  EXPECT_EQ(Events.front(), "before1 pipeline @foo");
  EXPECT_EQ(Events.back(), "after2 pipeline");

  // Composite passes nest their SSA sandwich: a "before gvn" must be
  // followed by "before ssa.build" before "after gvn" arrives.
  auto Find = [&](const std::string &Needle, size_t From) {
    for (size_t I = From; I < Events.size(); ++I)
      if (Events[I].rfind(Needle, 0) == 0)
        return I;
    return Events.size();
  };
  size_t GvnBefore = Find("before1 gvn", 0);
  ASSERT_LT(GvnBefore, Events.size());
  size_t InnerBuild = Find("before1 ssa.build", GvnBefore);
  size_t GvnAfter = Find("after1 gvn", GvnBefore);
  ASSERT_LT(GvnAfter, Events.size());
  EXPECT_LT(InnerBuild, GvnAfter) << "gvn must run ssa.build inside itself";
}

TEST(Instrument, TimerTreeNestsAndReports) {
  LowerResult LR;
  Function *F = compileFoo(LR, NamingMode::Naive);
  ASSERT_TRUE(F);

  InstrumentationOptions IO;
  IO.TimePasses = true;
  PassInstrumentation PI(IO);
  PipelineOptions PO;
  PO.Level = OptLevel::Distribution;
  PO.Instr = &PI;
  optimizeFunction(*F, PO);

  const std::vector<TimerTree::Slice> &S = PI.timers().slices();
  ASSERT_FALSE(S.empty());

  // Exactly one root: the pipeline scope; every other slice sits under it.
  unsigned Roots = 0;
  int PipelineIdx = -1;
  for (unsigned I = 0; I < S.size(); ++I)
    if (S[I].Parent < 0) {
      ++Roots;
      PipelineIdx = int(I);
    }
  ASSERT_EQ(Roots, 1u);
  EXPECT_EQ(S[PipelineIdx].Name, "pipeline");

  // Children fit inside their parents (time containment), and the SSA
  // sandwich slices hang under their composite pass.
  bool SawNestedBuild = false;
  for (const TimerTree::Slice &C : S) {
    if (C.Parent < 0)
      continue;
    const TimerTree::Slice &P = S[C.Parent];
    EXPECT_GE(C.StartNs, P.StartNs) << C.Name;
    EXPECT_LE(C.StartNs + C.DurNs, P.StartNs + P.DurNs) << C.Name;
    if (C.Name == "ssa.build" && P.Name == "gvn")
      SawNestedBuild = true;
  }
  EXPECT_TRUE(SawNestedBuild);

  std::string Report = PI.timers().report();
  EXPECT_NE(Report.find("pipeline"), std::string::npos);
  EXPECT_NE(Report.find("pre"), std::string::npos);

  // The trace export is one JSON document with one event per slice.
  std::string Trace = PI.timers().toChromeTrace();
  EXPECT_NE(Trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Trace.find("\"ph\":\"X\""), std::string::npos);
}

TEST(Instrument, StatsRegistryBasics) {
  StatsRegistry A;
  A.counter("pre", "inserted") += 3;
  A.counter("pre", "inserted") += 2;
  A.counter("gvn", "classes") += 7;
  EXPECT_EQ(A.get("pre", "inserted"), 5u);
  EXPECT_EQ(A.get("pre.inserted"), 5u);
  EXPECT_EQ(A.get("nonexistent", "counter"), 0u);
  EXPECT_TRUE(A.has("gvn.classes"));
  EXPECT_FALSE(A.has("gvn.nope"));

  StatsRegistry B;
  B.counter("pre", "inserted") += 1;
  B.counter("dce", "removed") += 4;
  A.merge(B);
  EXPECT_EQ(A.get("pre", "inserted"), 6u);
  EXPECT_EQ(A.get("dce", "removed"), 4u);
  EXPECT_EQ(A.toJSON(),
            "{\"dce.removed\":4,\"gvn.classes\":7,\"pre.inserted\":6}");
}

TEST(Instrument, PassContextDisabledIsNoop) {
  // The default context (what deprecated shims use) must swallow
  // everything without crashing.
  PassContext Ctx;
  EXPECT_FALSE(Ctx.remarksEnabled());
  Ctx.addStat("anything", 42); // no registry, no pass scope: dropped
  EXPECT_EQ(Ctx.passName(), "");
}

TEST(Instrument, RemarkFiltering) {
  LowerResult LR;
  Function *F = compileFoo(LR, NamingMode::Naive);
  ASSERT_TRUE(F);

  InstrumentationOptions IO;
  IO.CollectRemarks = true;
  IO.RemarkPasses = {"pre"};
  PassInstrumentation PI(IO);
  PipelineOptions PO;
  PO.Level = OptLevel::Distribution;
  PO.Instr = &PI;
  optimizeFunction(*F, PO);

  ASSERT_FALSE(PI.remarks().empty());
  for (const Remark &R : PI.remarks().remarks())
    EXPECT_EQ(R.Pass, "pre") << R.toText();

  // Without the filter the reassociation and GVN remarks appear too.
  LowerResult LR2;
  Function *F2 = compileFoo(LR2, NamingMode::Naive);
  ASSERT_TRUE(F2);
  InstrumentationOptions IOAll;
  IOAll.CollectRemarks = true;
  PassInstrumentation PIAll(IOAll);
  PO.Instr = &PIAll;
  optimizeFunction(*F2, PO);
  auto Counts = PIAll.remarks().countsByPass();
  EXPECT_GT(Counts["pre"], 0u);
  EXPECT_GT(Counts["gvn"], 0u);
  EXPECT_GT(Counts["reassoc"], 0u);
  EXPECT_GT(PIAll.remarks().size(), PI.remarks().size());
}

TEST(Instrument, ChangedIRSnapshotGating) {
  // SCCP folds the constant the first time (IR changes: one dump) and
  // finds nothing the second time (no dump).
  const char *Src = R"(
function k()
  a = 2
  b = a * 3
  return b
end
)";
  LowerResult LR = compileMiniFortran(Src, NamingMode::Naive);
  ASSERT_TRUE(LR.ok()) << LR.Error;
  Function &F = *LR.M->find("k");

  InstrumentationOptions IO;
  IO.PrintChangedIR = true;
  PassInstrumentation PI(IO);
  std::vector<std::string> Dumps;
  PI.setSnapshotSink([&](const std::string &S) { Dumps.push_back(S); });

  StatsRegistry SR;
  PassContext Ctx(&SR, &PI);
  FunctionAnalysisManager AM(F);
  SCCPPass().run(F, AM, Ctx);
  ASSERT_EQ(Dumps.size(), 1u);
  EXPECT_NE(Dumps[0].find("IR after sccp"), std::string::npos);
  SCCPPass().run(F, AM, Ctx);
  EXPECT_EQ(Dumps.size(), 1u) << "unchanged pass must not dump";
}

TEST(Instrument, JSONEscaping) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(jsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(jsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

// --- A minimal JSON syntax checker for the schema test -------------------

struct JSONCheck {
  const std::string &S;
  size_t P = 0;
  bool Ok = true;

  explicit JSONCheck(const std::string &S) : S(S) {}
  void ws() {
    while (P < S.size() && std::isspace(static_cast<unsigned char>(S[P])))
      ++P;
  }
  bool eat(char C) {
    ws();
    if (P < S.size() && S[P] == C) {
      ++P;
      return true;
    }
    return false;
  }
  void fail() { Ok = false; }
  void value() {
    if (!Ok)
      return;
    ws();
    if (P >= S.size())
      return fail();
    char C = S[P];
    if (C == '{')
      return object();
    if (C == '[')
      return array();
    if (C == '"')
      return string();
    if (C == '-' || std::isdigit(static_cast<unsigned char>(C)))
      return number();
    if (S.compare(P, 4, "true") == 0)
      P += 4;
    else if (S.compare(P, 5, "false") == 0)
      P += 5;
    else if (S.compare(P, 4, "null") == 0)
      P += 4;
    else
      fail();
  }
  void object() {
    if (!eat('{'))
      return fail();
    if (eat('}'))
      return;
    do {
      string();
      if (!eat(':'))
        return fail();
      value();
    } while (Ok && eat(','));
    if (!eat('}'))
      fail();
  }
  void array() {
    if (!eat('['))
      return fail();
    if (eat(']'))
      return;
    do
      value();
    while (Ok && eat(','));
    if (!eat(']'))
      fail();
  }
  void string() {
    ws();
    if (P >= S.size() || S[P] != '"')
      return fail();
    ++P;
    while (P < S.size() && S[P] != '"') {
      if (S[P] == '\\')
        ++P;
      ++P;
    }
    if (P >= S.size())
      return fail();
    ++P;
  }
  void number() {
    if (S[P] == '-')
      ++P;
    while (P < S.size() &&
           (std::isdigit(static_cast<unsigned char>(S[P])) || S[P] == '.' ||
            S[P] == 'e' || S[P] == 'E' || S[P] == '+' || S[P] == '-'))
      ++P;
  }
  bool parse() {
    value();
    ws();
    return Ok && P == S.size();
  }
};

TEST(Instrument, StatsJSONSchema) {
  LowerResult LR;
  Function *F = compileFoo(LR, NamingMode::Naive);
  ASSERT_TRUE(F);

  InstrumentationOptions IO;
  IO.TimePasses = true;
  IO.CollectRemarks = true;
  PassInstrumentation PI(IO);
  PipelineOptions PO;
  PO.Level = OptLevel::Distribution;
  PO.Instr = &PI;
  optimizeFunction(*F, PO);

  std::string Doc = PI.statsJSON();
  JSONCheck C(Doc);
  EXPECT_TRUE(C.parse()) << Doc;

  // Top-level schema: timers (total_ns + passes array), counters, remarks.
  EXPECT_NE(Doc.find("\"timers\":{\"total_ns\":"), std::string::npos);
  EXPECT_NE(Doc.find("\"passes\":[{"), std::string::npos);
  EXPECT_NE(Doc.find("\"pass\":\"pipeline\""), std::string::npos);
  EXPECT_NE(Doc.find("\"wall_ns\":"), std::string::npos);
  EXPECT_NE(Doc.find("\"invocations\":"), std::string::npos);
  EXPECT_NE(Doc.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(Doc.find("\"pipeline.ops_before\":"), std::string::npos);
  EXPECT_NE(Doc.find("\"pre.deleted\":"), std::string::npos);
  EXPECT_NE(Doc.find("\"remarks\":{"), std::string::npos);
}

TEST(Instrument, OptionRoundTripsAndValidation) {
  for (OptLevel L : {OptLevel::None, OptLevel::Baseline, OptLevel::Partial,
                     OptLevel::Reassociation, OptLevel::Distribution}) {
    OptLevel Got;
    EXPECT_TRUE(parseOptLevel(optLevelName(L), Got));
    EXPECT_EQ(Got, L);
  }
  for (PREStrategy S :
       {PREStrategy::LazyCodeMotion, PREStrategy::MorelRenvoise,
        PREStrategy::GlobalCSE, PREStrategy::Speculative}) {
    PREStrategy Got;
    EXPECT_TRUE(parsePREStrategy(preStrategyName(S), Got));
    EXPECT_EQ(Got, S);
  }
  for (GVNEngine E : {GVNEngine::AWZ, GVNEngine::DVNT}) {
    GVNEngine Got;
    EXPECT_TRUE(parseGVNEngine(gvnEngineName(E), Got));
    EXPECT_EQ(Got, E);
  }
  for (InputNaming N : {InputNaming::Hashed, InputNaming::Naive}) {
    InputNaming Got;
    EXPECT_TRUE(parseInputNaming(inputNamingName(N), Got));
    EXPECT_EQ(Got, N);
  }
  PREStrategy S;
  EXPECT_TRUE(parsePREStrategy("lcm", S)); // historical alias
  EXPECT_EQ(S, PREStrategy::LazyCodeMotion);
  EXPECT_TRUE(parsePREStrategy("lospre", S)); // literature alias
  EXPECT_EQ(S, PREStrategy::Speculative);
  OptLevel L;
  EXPECT_FALSE(parseOptLevel("turbo", L));
  GVNEngine E;
  EXPECT_FALSE(parseGVNEngine("hash", E));

  PipelineOptions Good;
  EXPECT_EQ(Good.validate(), "");
  EXPECT_TRUE(PipelineOptions::create(Good).has_value());

  PipelineOptions BadNaming;
  BadNaming.Level = OptLevel::Partial;
  BadNaming.Naming = InputNaming::Naive;
  std::string Err;
  EXPECT_FALSE(PipelineOptions::create(BadNaming, &Err).has_value());
  EXPECT_NE(Err.find("hashed"), std::string::npos);

  PipelineOptions BadFP;
  BadFP.Level = OptLevel::Distribution;
  BadFP.AllowFPReassoc = false;
  EXPECT_FALSE(PipelineOptions::create(BadFP, &Err).has_value());
  EXPECT_NE(Err.find("distribution"), std::string::npos);

  PipelineOptions BadSR;
  BadSR.Level = OptLevel::None;
  BadSR.EnableStrengthReduction = true;
  EXPECT_NE(BadSR.validate(), "");

  // Speculative placement is profile-guided by definition: without a
  // profile attached the combination is rejected, with one it validates.
  PipelineOptions Spec;
  Spec.Level = OptLevel::Partial;
  Spec.Strategy = PREStrategy::Speculative;
  EXPECT_FALSE(PipelineOptions::create(Spec, &Err).has_value());
  EXPECT_NE(Err.find("profile"), std::string::npos);
  ProfileDoc Doc;
  Spec.ProfileIn = &Doc;
  EXPECT_TRUE(PipelineOptions::create(Spec).has_value());
}

TEST(Instrument, ParallelMergeIsDeterministic) {
  std::string Src;
  for (int I = 0; I < 6; ++I) {
    std::string One = FooSource;
    size_t Pos = One.find("function foo");
    One.replace(Pos, 12, "function gen" + std::to_string(I));
    Src += One;
  }
  auto Compile = [&](LowerResult &LR) {
    LR = compileMiniFortran(Src, NamingMode::Naive);
    ASSERT_TRUE(LR.ok()) << LR.Error;
  };
  LowerResult Serial, Par;
  Compile(Serial);
  Compile(Par);

  InstrumentationOptions IO;
  IO.TimePasses = true;
  IO.CollectRemarks = true;
  PassInstrumentation SerialPI(IO), ParPI(IO);

  PipelineOptions PO;
  PO.Level = OptLevel::Distribution;
  PO.Instr = &SerialPI;
  optimizeModule(*Serial.M, PO);
  PO.Instr = &ParPI;
  runPipelineParallel(*Par.M, PO, 4);

  // Counters and the remark stream must be bit-identical to the serial
  // run; timers differ in wall time but cover the same pass executions.
  EXPECT_EQ(SerialPI.stats().toJSON(), ParPI.stats().toJSON());
  EXPECT_EQ(SerialPI.remarks().toText(), ParPI.remarks().toText());
  EXPECT_EQ(SerialPI.timers().slices().size(),
            ParPI.timers().slices().size());
}

TEST(Instrument, GoldenRemarksOnPaperExample) {
  // The paper's running example at the Partial level: hashed naming, name
  // localization, then PRE hoists `y + z`'s recomputations. The remark
  // text is the golden contract of the remark layer.
  LowerResult LR;
  Function *F = compileFoo(LR, NamingMode::Hashed);
  ASSERT_TRUE(F);

  InstrumentationOptions IO;
  IO.CollectRemarks = true;
  IO.RemarkPasses = {"pre"};
  PassInstrumentation PI(IO);
  PipelineOptions PO;
  PO.Level = OptLevel::Partial;
  PO.Instr = &PI;
  optimizeFunction(*F, PO);

  std::string Text = PI.remarks().toText();
  // Every line is attributed to PRE inside foo, and the set of remark
  // kinds is exactly insert+delete (PRE emits nothing else).
  for (const Remark &R : PI.remarks().remarks()) {
    EXPECT_EQ(R.Pass, "pre");
    EXPECT_EQ(R.Function, "foo");
    EXPECT_TRUE(R.Kind == RemarkKind::Insert || R.Kind == RemarkKind::Delete)
        << R.toText();
  }
  // At Partial, hashed naming leaves exactly one partially redundant
  // computation: the loop-invariant constant load feeding the loop bound,
  // deleted from the body and re-inserted on the entry edge.
  EXPECT_EQ(Text,
            "pre: delete: [foo:^b1] loadi — "
            "redundant computation of r16 removed\n"
            "pre: insert: [foo:^b1] loadi — "
            "computation of r16 inserted on edge ^entry -> ^b1\n");
}

} // namespace
