//===- tests/edge_cases_test.cpp - Corner-case coverage -------------------===//
///
/// Structural corner cases: irreducible control flow, degenerate
/// functions, ExprKey normalization, weighted costs, and frontend corner
/// syntax.
///
//===----------------------------------------------------------------------===//

#include "frontend/Lower.h"
#include "interp/Interpreter.h"
#include "ir/ExprKey.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "pipeline/Pipeline.h"

#include <gtest/gtest.h>

using namespace epre;

namespace {

std::unique_ptr<Module> parse(const char *Src) {
  ParseResult R = parseModule(Src);
  EXPECT_TRUE(R.ok()) << R.Error;
  return std::move(R.M);
}

TEST(ExprKeys, CommutativeNormalization) {
  Function F("f");
  Reg A = F.makeReg(Type::I64), B = F.makeReg(Type::I64);
  Instruction AB = Instruction::makeBinary(Opcode::Add, Type::I64, 0, A, B);
  Instruction BA = Instruction::makeBinary(Opcode::Add, Type::I64, 0, B, A);
  EXPECT_TRUE(makeExprKey(AB, true) == makeExprKey(BA, true));
  EXPECT_FALSE(makeExprKey(AB, false) == makeExprKey(BA, false));

  // Subtraction is not commutative: never normalized.
  Instruction SubAB =
      Instruction::makeBinary(Opcode::Sub, Type::I64, 0, A, B);
  Instruction SubBA =
      Instruction::makeBinary(Opcode::Sub, Type::I64, 0, B, A);
  EXPECT_FALSE(makeExprKey(SubAB, true) == makeExprKey(SubBA, true));
}

TEST(ExprKeys, ConstantsKeyedByValueAndType) {
  Instruction I1 = Instruction::makeLoadI(0, 42);
  Instruction I2 = Instruction::makeLoadI(0, 42);
  Instruction I3 = Instruction::makeLoadI(0, 43);
  Instruction F1 = Instruction::makeLoadF(0, 42.0);
  EXPECT_TRUE(makeExprKey(I1) == makeExprKey(I2));
  EXPECT_FALSE(makeExprKey(I1) == makeExprKey(I3));
  EXPECT_FALSE(makeExprKey(I1) == makeExprKey(F1));
  // -0.0 and +0.0 are distinct bit patterns, hence distinct keys.
  Instruction FPos = Instruction::makeLoadF(0, 0.0);
  Instruction FNeg = Instruction::makeLoadF(0, -0.0);
  EXPECT_FALSE(makeExprKey(FPos) == makeExprKey(FNeg));
}

TEST(ExprKeys, CallsKeyedByIntrinsic) {
  Function F("f");
  Reg A = F.makeReg(Type::F64);
  Instruction S = Instruction::makeCall(Intrinsic::Sin, Type::F64, 0, {A});
  Instruction C = Instruction::makeCall(Intrinsic::Cos, Type::F64, 0, {A});
  EXPECT_FALSE(makeExprKey(S) == makeExprKey(C));
}

// An irreducible CFG (two-entry "loop"): every pass must stay correct even
// though LoopInfo sees no natural loop here.
TEST(Irreducible, PipelineIsSafe) {
  const char *Src = R"(
func @f(%p:i64, %n:i64) -> i64 {
^e:
  %z:i64 = loadi 0
  %i:i64 = copy %z
  %s:i64 = copy %z
  cbr %p, ^a, ^b
^a:
  %one:i64 = loadi 1
  %s:i64 = add %s, %one
  %i:i64 = add %i, %one
  %c1:i64 = cmplt %i, %n
  cbr %c1, ^b, ^x
^b:
  %two:i64 = loadi 2
  %s:i64 = add %s, %two
  %i:i64 = add %i, %two
  %c2:i64 = cmplt %i, %n
  cbr %c2, ^a, ^x
^x:
  ret %s
}
)";
  for (int64_t P : {0, 1}) {
    auto M = parse(Src);
    Function &F = *M->Functions[0];
    MemoryImage Mem(0);
    int64_t Before =
        interpret(F, {RtValue::ofI(P), RtValue::ofI(20)}, Mem).ReturnValue.I;
    PipelineOptions PO;
    PO.Level = OptLevel::Distribution;
    PO.EnableStrengthReduction = true;
    optimizeFunction(F, PO);
    ExecResult R = interpret(F, {RtValue::ofI(P), RtValue::ofI(20)}, Mem);
    ASSERT_TRUE(R.ok()) << R.TrapReason;
    EXPECT_EQ(R.ReturnValue.I, Before) << "p=" << P;
  }
}

TEST(Degenerate, EmptyishFunctions) {
  // Just a return.
  auto M1 = parse("func @f() { ^e: ret }");
  PipelineOptions PO;
  PO.Level = OptLevel::Distribution;
  optimizeFunction(*M1->Functions[0], PO);
  EXPECT_TRUE(verifyFunction(*M1->Functions[0], SSAMode::NoSSA).empty());

  // Return a parameter through every level.
  for (OptLevel L : {OptLevel::Baseline, OptLevel::Partial,
                     OptLevel::Reassociation, OptLevel::Distribution}) {
    auto M2 = parse("func @g(%a:i64) -> i64 { ^e: ret %a }");
    PipelineOptions P2;
    P2.Level = L;
    optimizeFunction(*M2->Functions[0], P2);
    MemoryImage Mem(0);
    EXPECT_EQ(interpret(*M2->Functions[0], {RtValue::ofI(7)}, Mem)
                  .ReturnValue.I,
              7);
  }
}

TEST(Degenerate, ConstantOnlyFunction) {
  auto M = parse(R"(
func @f() -> i64 {
^e:
  %a:i64 = loadi 6
  %b:i64 = loadi 7
  %c:i64 = mul %a, %b
  ret %c
}
)");
  PipelineOptions PO;
  PO.Level = OptLevel::Distribution;
  optimizeFunction(*M->Functions[0], PO);
  MemoryImage Mem(0);
  ExecResult R = interpret(*M->Functions[0], {}, Mem);
  EXPECT_EQ(R.ReturnValue.I, 42);
  // Everything folded: at most loadi + ret remain.
  EXPECT_LE(R.DynOps, 2u);
}

TEST(Interpreter, WeightedCostModel) {
  EXPECT_EQ(opcodeCost(Opcode::Add), 1u);
  EXPECT_EQ(opcodeCost(Opcode::Mul), 3u);
  EXPECT_EQ(opcodeCost(Opcode::Div), 12u);
  EXPECT_EQ(opcodeCost(Opcode::Call), 20u);
  EXPECT_EQ(opcodeCost(Opcode::Load), 2u);
  EXPECT_EQ(opcodeCost(Opcode::Phi), 0u);

  auto M = parse(R"(
func @f(%a:i64, %b:i64) -> i64 {
^e:
  %m:i64 = mul %a, %b
  %s:i64 = add %m, %a
  ret %s
}
)");
  MemoryImage Mem(0);
  ExecResult R = interpret(*M->Functions[0],
                           {RtValue::ofI(2), RtValue::ofI(3)}, Mem);
  EXPECT_EQ(R.DynOps, 3u);
  EXPECT_EQ(R.WeightedCost, 3u + 1u + 1u); // mul + add + ret
}

TEST(Frontend, SyntaxCorners) {
  // Nested parens, unary plus/minus stacking, d-exponents, semicolons.
  const char *Src = R"(
function corner(a)
  real a, corner
  b = -(-(+a)) + 1.0d1 ; c = ((b))
  if (c .gt. 0.0) then
    corner = c * 2.0
  else
    corner = -c
  end if
  return
end
)";
  LowerResult LR = compileMiniFortran(Src, NamingMode::Naive);
  ASSERT_TRUE(LR.ok()) << LR.Error;
  MemoryImage Mem(0);
  ExecResult R =
      interpret(*LR.M->find("corner"), {RtValue::ofF(3.0)}, Mem);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ReturnValue.F, 26.0); // (3 + 10) * 2
}

TEST(Frontend, WhileZeroIterations) {
  const char *Src = R"(
function wz(n)
  integer n, k, wz
  k = 5
  while (n .gt. 100)
    k = k + 1
    n = n + 1
  end while
  return k
end
)";
  LowerResult LR = compileMiniFortran(Src, NamingMode::Naive);
  ASSERT_TRUE(LR.ok()) << LR.Error;
  MemoryImage Mem(0);
  EXPECT_EQ(interpret(*LR.M->find("wz"), {RtValue::ofI(1)}, Mem)
                .ReturnValue.I,
            5);
}

TEST(Parser, ExtremeImmediates) {
  auto M = parse(R"(
func @f() -> i64 {
^e:
  %a:i64 = loadi 9223372036854775807
  %b:i64 = loadi -9223372036854775808
  %c:i64 = add %a, %b
  ret %c
}
)");
  const BasicBlock *E = M->Functions[0]->entry();
  EXPECT_EQ(E->Insts[0].IImm, 9223372036854775807LL);
  EXPECT_EQ(E->Insts[1].IImm, INT64_MIN);
  MemoryImage Mem(0);
  EXPECT_EQ(interpret(*M->Functions[0], {}, Mem).ReturnValue.I, -1);
}

TEST(Printer, RoundTripsWeirdDoubles) {
  auto M = parse(R"(
func @f() -> f64 {
^e:
  %a:f64 = loadf 4.9406564584124654e-324
  %b:f64 = loadf 1.7976931348623157e308
  %c:f64 = add %a, %b
  ret %c
}
)");
  std::string P1 = printModule(*M);
  ParseResult R2 = parseModule(P1);
  ASSERT_TRUE(R2.ok()) << R2.Error;
  EXPECT_EQ(R2.M->Functions[0]->entry()->Insts[0].FImm,
            4.9406564584124654e-324);
  EXPECT_EQ(R2.M->Functions[0]->entry()->Insts[1].FImm,
            1.7976931348623157e308);
}

} // namespace
