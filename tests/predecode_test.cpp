//===- tests/predecode_test.cpp - Predecoded-engine identity suite --------===//
///
/// \file
/// The differential identity suite for the predecoded bytecode interpreter:
/// the predecoded engine must be bit-for-bit identical to the legacy
/// tree-walk in every observable — return value, memory-image hash, DynOps,
/// per-opcode OpCounts, WeightedCost, trap kind/location/message, and (when
/// profiling) the finalized FunctionProfile. Exercised over the committed
/// corpus, the paper's Fig. 2 running example, 1000+ fuzz-generated
/// programs, hand-written trap programs for every TrapKind, and fuel sweeps
/// that force the block-residual accounting onto its careful path at every
/// boundary (N-1, N, N+1).
///
//===----------------------------------------------------------------------===//

#include "frontend/Lower.h"
#include "fuzz/FuzzGen.h"
#include "fuzz/ModuleOps.h"
#include "instrument/Profile.h"
#include "interp/Predecode.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace epre;
using namespace epre::fuzz;

namespace {

std::string profileJSON(const FunctionProfile &P) {
  ProfileDoc D;
  D.Profiles.push_back(P);
  return D.toJSON(/*IncludeBlocks=*/true);
}

/// Runs \p F on both engines under identical conditions and asserts every
/// observable matches. Returns the legacy result for follow-up assertions.
ExecResult expectIdentical(const Function &F, const std::vector<RtValue> &Args,
                           size_t MemBytes, uint64_t MaxOps,
                           bool WithProfile = false) {
  ExecLimits Limits;
  Limits.MaxOps = MaxOps;

  MemoryImage MemL(MemBytes), MemP(MemBytes);
  ProfileCollector PCL, PCP;
  ExecResult L = interpretLegacy(F, Args, MemL, Limits,
                                 WithProfile ? &PCL : nullptr);
  ExecResult P =
      interpret(F, Args, MemP, Limits, WithProfile ? &PCP : nullptr);

  EXPECT_EQ(L.Trapped, P.Trapped);
  EXPECT_EQ(int(L.Kind), int(P.Kind));
  EXPECT_EQ(L.TrapReason, P.TrapReason);
  EXPECT_EQ(L.TrapFunction, P.TrapFunction);
  EXPECT_EQ(L.TrapBlock, P.TrapBlock);
  EXPECT_EQ(L.TrapInstIndex, P.TrapInstIndex);
  EXPECT_EQ(L.HasReturn, P.HasReturn);
  if (L.HasReturn && P.HasReturn)
    EXPECT_TRUE(L.ReturnValue.identical(P.ReturnValue))
        << L.ReturnValue.I << " vs " << P.ReturnValue.I;
  EXPECT_EQ(L.DynOps, P.DynOps);
  EXPECT_EQ(L.WeightedCost, P.WeightedCost);
  EXPECT_EQ(L.OpCounts, P.OpCounts);
  EXPECT_EQ(MemL.hash(), MemP.hash());

  // The documented invariant holds on every exit path of both engines.
  uint64_t SumL = 0, SumP = 0;
  for (uint64_t C : L.OpCounts)
    SumL += C;
  for (uint64_t C : P.OpCounts)
    SumP += C;
  EXPECT_EQ(L.DynOps, SumL);
  EXPECT_EQ(P.DynOps, SumP);

  // Argument-mismatch traps return before the collectors are reset against
  // F, so there is no profile to finalize on either engine.
  if (WithProfile && L.Kind != TrapKind::ArgumentMismatch)
    EXPECT_EQ(profileJSON(PCL.finalize(F)), profileJSON(PCP.finalize(F)));
  return L;
}

/// Fuel sweep around and below the program's clean-run operation count:
/// exact fit, one short (trap on the last instruction), one past, midpoints
/// and tiny budgets. Forces the careful-path handoff at every boundary.
void fuelSweep(const Function &F, const std::vector<RtValue> &Args,
               size_t MemBytes, uint64_t CleanDynOps) {
  std::vector<uint64_t> Budgets = {CleanDynOps, CleanDynOps + 1, 1, 2, 3};
  if (CleanDynOps > 0)
    Budgets.push_back(CleanDynOps - 1);
  if (CleanDynOps > 2)
    Budgets.push_back(CleanDynOps / 2);
  if (CleanDynOps > 4)
    Budgets.push_back(CleanDynOps / 4 + 1);
  for (uint64_t B : Budgets) {
    SCOPED_TRACE("MaxOps=" + std::to_string(B));
    expectIdentical(F, Args, MemBytes, B, /*WithProfile=*/true);
  }
}

std::vector<std::string> corpusFiles() {
  std::vector<std::string> Files;
  for (const auto &E : std::filesystem::directory_iterator(EPRE_CORPUS_DIR))
    if (E.path().extension() == ".iloc")
      Files.push_back(E.path().string());
  std::sort(Files.begin(), Files.end());
  EXPECT_FALSE(Files.empty());
  return Files;
}

std::vector<RtValue> defaultArgs(const Function &F) {
  std::vector<RtValue> Args;
  int64_t NextI = 7;
  double NextF = 1.5;
  for (Reg R : F.params()) {
    if (F.regType(R) == Type::I64) {
      Args.push_back(RtValue::ofI(NextI));
      NextI = -NextI + 5;
    } else {
      Args.push_back(RtValue::ofF(NextF));
      NextF = NextF * -1.75 + 0.5;
    }
  }
  return Args;
}

TEST(PredecodeIdentity, CorpusPrograms) {
  for (const std::string &Path : corpusFiles()) {
    SCOPED_TRACE(Path);
    std::ifstream In(Path);
    std::stringstream SS;
    SS << In.rdbuf();
    std::unique_ptr<Module> M = parseModuleText(SS.str());
    ASSERT_NE(M, nullptr);
    for (auto &FP : M->Functions) {
      const Function &F = *FP;
      std::vector<RtValue> Args = defaultArgs(F);
      ExecResult Clean =
          expectIdentical(F, Args, 4096, 1'000'000, /*WithProfile=*/true);
      fuelSweep(F, Args, 4096, Clean.DynOps);
    }
  }
}

TEST(PredecodeIdentity, Fig2RunningExample) {
  const char *FooSource = R"(
function foo(y, z)
  s = 0
  x = y + z
  do i = x, 100
    s = i + s + x
  end do
  return s
end
)";
  for (NamingMode Mode : {NamingMode::Naive, NamingMode::Hashed}) {
    LowerResult LR = compileMiniFortran(FooSource, Mode);
    ASSERT_TRUE(LR.ok()) << LR.Error;
    Function *F = LR.M->find("foo");
    ASSERT_NE(F, nullptr);
    std::vector<RtValue> Args = {RtValue::ofF(1.0), RtValue::ofF(2.0)};
    ExecResult Clean =
        expectIdentical(*F, Args, 0, 1'000'000, /*WithProfile=*/true);
    EXPECT_FALSE(Clean.Trapped);
    fuelSweep(*F, Args, 0, Clean.DynOps);
  }
}

TEST(PredecodeIdentity, FuzzGeneratedPrograms) {
  // >= 1000 generated programs across every shape preset; every 8th one
  // additionally gets the full fuel sweep (careful-path coverage).
  std::vector<std::string> Shapes = generatorShapeNames();
  ASSERT_FALSE(Shapes.empty());
  unsigned PerShape = (1000 + unsigned(Shapes.size()) - 1) /
                      unsigned(Shapes.size());
  unsigned Total = 0;
  for (const std::string &Shape : Shapes) {
    GeneratorOptions Opts;
    ASSERT_TRUE(shapeOptions(Shape, Opts));
    for (unsigned Seed = 0; Seed < PerShape; ++Seed, ++Total) {
      FuzzProgram Prog = generateProgram(1000 + Seed, Opts, Shape);
      std::unique_ptr<Module> M = parseModuleText(Prog.Text);
      ASSERT_NE(M, nullptr) << Shape << " seed " << Seed;
      SCOPED_TRACE(Shape + " seed " + std::to_string(Seed));
      const Function &F = *M->Functions[0];
      ExecResult Clean = expectIdentical(F, Prog.Args, Prog.MemBytes,
                                         2'000'000, Seed % 4 == 0);
      if (Seed % 8 == 0)
        fuelSweep(F, Prog.Args, Prog.MemBytes, Clean.DynOps);
    }
  }
  EXPECT_GE(Total, 1000u);
}

//===--------------------------------------------------------------------===//
// Trap programs: every TrapKind, both engines, including fused positions.
//===--------------------------------------------------------------------===//

void expectTrapIdentity(const std::string &Text,
                        const std::vector<RtValue> &Args, size_t MemBytes,
                        TrapKind Expected) {
  std::unique_ptr<Module> M = parseModuleText(Text);
  ASSERT_NE(M, nullptr) << Text;
  const Function &F = *M->Functions[0];
  ExecResult L = expectIdentical(F, Args, MemBytes, 100'000, true);
  EXPECT_TRUE(L.Trapped);
  EXPECT_EQ(int(Expected), int(L.Kind)) << L.TrapReason;
  fuelSweep(F, Args, MemBytes, L.DynOps);
}

TEST(PredecodeTraps, LoadOutOfBounds) {
  expectTrapIdentity(R"(func @t(%r1:i64) -> i64 {
^entry:
  %r2:i64 = loadi 4096
  %r3:i64 = add %r1, %r2
  %r4:i64 = load %r3
  ret %r4
})",
                     {RtValue::ofI(100)}, 64, TrapKind::MemoryOutOfBounds);
}

TEST(PredecodeTraps, FusedAddLoadOutOfBounds) {
  // The add+load pair fuses; the trap must still attribute to the load's
  // original instruction index with exact counts.
  const char *Text = R"(func @t(%r1:i64) -> i64 {
^entry:
  %r2:i64 = loadi 8
  %r3:i64 = add %r1, %r2
  %r4:i64 = load %r3
  ret %r4
})";
  std::unique_ptr<Module> M = parseModuleText(Text);
  ASSERT_NE(M, nullptr);
  Predecoder PD;
  Arena A;
  BytecodeFunction BF;
  ASSERT_TRUE(PD.predecode(*M->Functions[0], A, BF));
  EXPECT_GE(BF.FusedCount, 1u);
  expectTrapIdentity(Text, {RtValue::ofI(1 << 20)}, 64,
                     TrapKind::MemoryOutOfBounds);
  // And the in-bounds case through the same fused pair.
  ExecResult Ok =
      expectIdentical(*M->Functions[0], {RtValue::ofI(0)}, 64, 1000, true);
  EXPECT_FALSE(Ok.Trapped);
}

TEST(PredecodeTraps, StoreOutOfBounds) {
  expectTrapIdentity(R"(func @t(%r1:i64) -> i64 {
^entry:
  store %r1 -> %r1
  ret %r1
})",
                     {RtValue::ofI(-8)}, 64, TrapKind::MemoryOutOfBounds);
}

TEST(PredecodeTraps, DivByZeroAndModByZero) {
  expectTrapIdentity(R"(func @t(%r1:i64) -> i64 {
^entry:
  %r2:i64 = loadi 0
  %r3:i64 = div %r1, %r2
  ret %r3
})",
                     {RtValue::ofI(5)}, 0, TrapKind::ArithmeticTrap);
  expectTrapIdentity(R"(func @t(%r1:i64) -> i64 {
^entry:
  %r2:i64 = loadi 0
  %r3:i64 = mod %r1, %r2
  ret %r3
})",
                     {RtValue::ofI(5)}, 0, TrapKind::ArithmeticTrap);
  // INT64_MIN / -1 and INT64_MIN % -1 also trap.
  expectTrapIdentity(R"(func @t(%r1:i64, %r2:i64) -> i64 {
^entry:
  %r3:i64 = div %r1, %r2
  ret %r3
})",
                     {RtValue::ofI(INT64_MIN), RtValue::ofI(-1)}, 0,
                     TrapKind::ArithmeticTrap);
}

TEST(PredecodeTraps, F2IOutOfRange) {
  expectTrapIdentity(R"(func @t(%r1:f64) -> i64 {
^entry:
  %r2:i64 = f2i %r1
  ret %r2
})",
                     {RtValue::ofF(1e300)}, 0, TrapKind::ArithmeticTrap);
}

TEST(PredecodeTraps, IntAbsMinTraps) {
  expectTrapIdentity(R"(func @t(%r1:i64) -> i64 {
^entry:
  %r2:i64 = call abs(%r1)
  ret %r2
})",
                     {RtValue::ofI(INT64_MIN)}, 0, TrapKind::ArithmeticTrap);
}

TEST(PredecodeTraps, ArgumentMismatch) {
  std::unique_ptr<Module> M = parseModuleText(R"(func @t(%r1:i64) -> i64 {
^entry:
  ret %r1
})");
  ASSERT_NE(M, nullptr);
  const Function &F = *M->Functions[0];
  // Wrong count.
  ExecResult L = expectIdentical(F, {}, 0, 1000, true);
  EXPECT_EQ(int(L.Kind), int(TrapKind::ArgumentMismatch));
  EXPECT_EQ(L.DynOps, 0u);
  // Wrong type.
  L = expectIdentical(F, {RtValue::ofF(1.0)}, 0, 1000, true);
  EXPECT_EQ(int(L.Kind), int(TrapKind::ArgumentMismatch));
}

TEST(PredecodeTraps, ErasedBlock) {
  Function F("t");
  F.addParam(Type::I64);
  F.addBlock("entry");
  F.addBlock("gone");
  F.entry()->Insts.push_back(Instruction::makeBr(1));
  F.block(1)->Insts.push_back(Instruction::makeRet());
  F.eraseBlock(1);
  ExecResult L = expectIdentical(F, {RtValue::ofI(0)}, 0, 1000, true);
  EXPECT_EQ(int(L.Kind), int(TrapKind::ErasedBlock));
  EXPECT_EQ(L.DynOps, 1u); // the branch executed and counted
  EXPECT_TRUE(L.TrapBlock.empty());
}

TEST(PredecodeTraps, MissingPhiEntry) {
  Function F("t");
  Reg P = F.addParam(Type::I64);
  Reg D = F.makeReg(Type::I64);
  F.addBlock("entry");
  F.addBlock("join");
  F.entry()->Insts.push_back(Instruction::makeBr(1));
  Instruction Phi = Instruction::makePhi(Type::I64, D);
  Phi.addPhiIncoming(P, 1); // entry for block 1, but we arrive from block 0
  F.block(1)->Insts.push_back(Phi);
  F.block(1)->Insts.push_back(Instruction::makeRet(Type::I64, D));
  ExecResult L = expectIdentical(F, {RtValue::ofI(3)}, 0, 1000, true);
  EXPECT_EQ(int(L.Kind), int(TrapKind::MissingPhiEntry));
  EXPECT_EQ(L.TrapBlock, "join");
  EXPECT_EQ(L.TrapInstIndex, 0u);
  EXPECT_EQ(L.DynOps, 1u);
}

TEST(PredecodeTraps, FuelBoundaryExact) {
  // ret-only program: 1 op. N-1 traps, N and N+1 succeed.
  std::unique_ptr<Module> M = parseModuleText(R"(func @t() -> i64 {
^entry:
  %r1:i64 = loadi 42
  ret %r1
})");
  ASSERT_NE(M, nullptr);
  const Function &F = *M->Functions[0];
  ExecResult L = expectIdentical(F, {}, 0, 2, true);
  EXPECT_FALSE(L.Trapped);
  EXPECT_EQ(L.DynOps, 2u);
  L = expectIdentical(F, {}, 0, 1, true);
  EXPECT_EQ(int(L.Kind), int(TrapKind::FuelExhausted));
  EXPECT_EQ(L.DynOps, 2u); // the trapped op is counted, not executed
  L = expectIdentical(F, {}, 0, 3, true);
  EXPECT_FALSE(L.Trapped);
}

//===--------------------------------------------------------------------===//
// Engine plumbing: fusion, fallback shapes, dispatch mode.
//===--------------------------------------------------------------------===//

TEST(Predecode, FusesHotPairs) {
  std::unique_ptr<Module> M = parseModuleText(R"(func @t(%r1:i64, %r2:i64) -> i64 {
^entry:
  %r3:i64 = mul %r1, %r2
  %r4:i64 = add %r3, %r1
  %r5:i64 = cmpgt %r4, %r2
  cbr %r5, ^a, ^b
^a:
  ret %r4
^b:
  ret %r2
})");
  ASSERT_NE(M, nullptr);
  Predecoder PD;
  Arena A;
  BytecodeFunction BF;
  ASSERT_TRUE(PD.predecode(*M->Functions[0], A, BF));
  EXPECT_EQ(BF.FusedCount, 2u); // mul+add and cmp+cbr
  expectIdentical(*M->Functions[0], {RtValue::ofI(6), RtValue::ofI(7)}, 0,
                  1000, true);
  expectIdentical(*M->Functions[0], {RtValue::ofI(-6), RtValue::ofI(7)}, 0,
                  1000, true);
}

TEST(Predecode, FallsBackOnUnsupportedShapes) {
  // No terminator: the legacy engine re-runs the block until fuel runs out;
  // the predecoder refuses and interpret() must match via fallback.
  {
    Function F("t");
    Reg A0 = F.addParam(Type::I64);
    Reg D = F.makeReg(Type::I64);
    F.addBlock("entry");
    F.entry()->Insts.push_back(
        Instruction::makeBinary(Opcode::Add, Type::I64, D, A0, A0));
    Predecoder PD;
    Arena A;
    BytecodeFunction BF;
    EXPECT_FALSE(PD.predecode(F, A, BF));
    ExecResult L = expectIdentical(F, {RtValue::ofI(1)}, 0, 25, true);
    EXPECT_EQ(int(L.Kind), int(TrapKind::FuelExhausted));
  }
  // Phi after the first non-phi: also refused, also identical.
  {
    Function F("t");
    Reg A0 = F.addParam(Type::I64);
    Reg D = F.makeReg(Type::I64);
    F.addBlock("entry");
    F.entry()->Insts.push_back(
        Instruction::makeBinary(Opcode::Add, Type::I64, D, A0, A0));
    Instruction Phi = Instruction::makePhi(Type::I64, D);
    Phi.addPhiIncoming(A0, 0);
    F.entry()->Insts.push_back(Phi);
    F.entry()->Insts.push_back(Instruction::makeRet(Type::I64, D));
    Predecoder PD;
    Arena A;
    BytecodeFunction BF;
    EXPECT_FALSE(PD.predecode(F, A, BF));
    expectIdentical(F, {RtValue::ofI(1)}, 0, 1000, true);
  }
}

TEST(Predecode, DispatchModeIsExposed) {
  std::string Mode = interpDispatchMode();
#if defined(EPRE_NO_COMPUTED_GOTO)
  EXPECT_EQ(Mode, "switch");
#else
  EXPECT_TRUE(Mode == "computed-goto" || Mode == "switch") << Mode;
#endif
}

TEST(Predecode, ArenaIsReusedAcrossRuns) {
  std::unique_ptr<Module> M = parseModuleText(R"(func @t(%r1:i64) -> i64 {
^entry:
  %r2:i64 = add %r1, %r1
  ret %r2
})");
  ASSERT_NE(M, nullptr);
  Predecoder PD;
  Arena Code, Scratch;
  BytecodeFunction BF;
  ASSERT_TRUE(PD.predecode(*M->Functions[0], Code, BF));
  MemoryImage Mem(0);
  (void)executeBytecode(BF, {RtValue::ofI(1)}, Mem, ExecLimits(), nullptr,
                        Scratch);
  size_t Reserved = Scratch.bytesReserved();
  for (int I = 0; I < 100; ++I)
    (void)executeBytecode(BF, {RtValue::ofI(I)}, Mem, ExecLimits(), nullptr,
                          Scratch);
  EXPECT_EQ(Scratch.bytesReserved(), Reserved); // no growth after warm-up
}

} // namespace
