//===- tests/gvn_test.cpp - AWZ value numbering and renaming --------------===//

#include "gvn/ValueNumbering.h"
#include "interp/Interpreter.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "ssa/SSA.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace epre;
using epre::test::runPass;

namespace {

std::unique_ptr<Module> parse(const char *Src) {
  ParseResult R = parseModule(Src);
  EXPECT_TRUE(R.ok()) << R.Error;
  return std::move(R.M);
}

TEST(GVN, CongruentExpressionsShareName) {
  auto M = parse(R"(
func @f(%a:i64, %b:i64) -> i64 {
^e:
  %t1:i64 = add %a, %b
  %t2:i64 = add %a, %b
  %t3:i64 = mul %t1, %t2
  ret %t3
}
)");
  Function &F = *M->Functions[0];
  GVNStats S = valueNumberSSA(F);
  EXPECT_GT(S.MergedDefs, 0u);
  const BasicBlock *E = F.entry();
  EXPECT_EQ(E->Insts[0].Dst, E->Insts[1].Dst);
  const Instruction &Mul = E->Insts[2];
  EXPECT_EQ(Mul.Operands[0], Mul.Operands[1]);
}

TEST(GVN, DifferentConstantsStayApart) {
  auto M = parse(R"(
func @f() -> i64 {
^e:
  %a:i64 = loadi 1
  %b:i64 = loadi 2
  %c:i64 = loadi 1
  %d:i64 = add %a, %b
  %e2:i64 = add %c, %b
  %r:i64 = add %d, %e2
  ret %r
}
)");
  Function &F = *M->Functions[0];
  valueNumberSSA(F);
  const BasicBlock *E = F.entry();
  // The two loadi 1 merge; loadi 2 stays distinct; the adds merge too.
  EXPECT_EQ(E->Insts[0].Dst, E->Insts[2].Dst);
  EXPECT_NE(E->Insts[0].Dst, E->Insts[1].Dst);
  EXPECT_EQ(E->Insts[3].Dst, E->Insts[4].Dst);
}

TEST(GVN, OptimisticLoopPhis) {
  // Two parallel induction chains with identical structure: the optimistic
  // AWZ fixpoint proves i ≅ j (pessimistic approaches cannot).
  auto M = parse(R"(
func @f(%n:i64) -> i64 {
^e:
  %z1:i64 = loadi 0
  %z2:i64 = loadi 0
  br ^l
^l:
  %i:i64 = phi [%z1, ^e], [%i2, ^l]
  %j:i64 = phi [%z2, ^e], [%j2, ^l]
  %one:i64 = loadi 1
  %i2:i64 = add %i, %one
  %j2:i64 = add %j, %one
  %c:i64 = cmplt %i2, %n
  cbr %c, ^l, ^x
^x:
  %r:i64 = add %i2, %j2
  ret %r
}
)");
  Function &F = *M->Functions[0];
  GVNStats S = valueNumberSSA(F);
  EXPECT_GT(S.MergedDefs, 0u);
  // After renaming, the add in ^x adds a register to itself.
  const BasicBlock *X = F.block(2);
  const Instruction &Add = X->Insts[0];
  EXPECT_EQ(Add.Operands[0], Add.Operands[1]) << printFunction(F);
}

TEST(GVN, PhisInDifferentBlocksNeverMerge) {
  auto M = parse(R"(
func @f(%p:i64, %a:i64, %b:i64) -> i64 {
^e:
  cbr %p, ^m1, ^m2
^m1:
  br ^j1
^m2:
  br ^j1
^j1:
  %x:i64 = phi [%a, ^m1], [%b, ^m2]
  cbr %p, ^m3, ^m4
^m3:
  br ^j2
^m4:
  br ^j2
^j2:
  %y:i64 = phi [%a, ^m3], [%b, ^m4]
  %r:i64 = add %x, %y
  ret %r
}
)");
  Function &F = *M->Functions[0];
  valueNumberSSA(F);
  // Even with positionally identical inputs, the phis sit in different
  // blocks ("the simplest variation") and must not merge.
  const BasicBlock *J2 = F.block(6);
  const Instruction &Add = J2->Insts[1];
  EXPECT_NE(Add.Operands[0], Add.Operands[1]);
}

TEST(GVN, LoadsNeverCongruent) {
  auto M = parse(R"(
func @f(%a:i64) -> f64 {
^e:
  %v1:f64 = load %a
  %v2:f64 = load %a
  %s:f64 = add %v1, %v2
  ret %s
}
)");
  Function &F = *M->Functions[0];
  valueNumberSSA(F);
  const BasicBlock *E = F.entry();
  EXPECT_NE(E->Insts[0].Dst, E->Insts[1].Dst);
}

TEST(GVN, FullPhasePreservesBehaviour) {
  const char *Src = R"(
func @f(%a:i64, %n:i64) -> i64 {
^e:
  %z:i64 = loadi 0
  %s:i64 = copy %z
  %i:i64 = copy %z
  br ^l
^l:
  %t1:i64 = add %a, %i
  %t2:i64 = add %a, %i
  %prod:i64 = mul %t1, %t2
  %s:i64 = add %s, %prod
  %one:i64 = loadi 1
  %i:i64 = add %i, %one
  %c:i64 = cmplt %i, %n
  cbr %c, ^l, ^x
^x:
  ret %s
}
)";
  for (int64_t N : {1, 3, 9}) {
    auto M = parse(Src);
    Function &F = *M->Functions[0];
    MemoryImage Mem(0);
    int64_t Before =
        interpret(F, {RtValue::ofI(2), RtValue::ofI(N)}, Mem).ReturnValue.I;
    GVNStats S = runPass(F, GVNPass()).lastStats();
    EXPECT_TRUE(verifyFunction(F, SSAMode::NoSSA).empty())
        << printFunction(F);
    EXPECT_GT(S.MergedDefs, 0u);
    int64_t After =
        interpret(F, {RtValue::ofI(2), RtValue::ofI(N)}, Mem).ReturnValue.I;
    EXPECT_EQ(Before, After) << "N=" << N;
  }
}

TEST(GVN, CommutedOperandsSimplestVariation) {
  // a+b vs b+a: the "simplest variation" is positional, so these do NOT
  // merge — documenting the paper's stated limitation.
  auto M = parse(R"(
func @f(%a:i64, %b:i64) -> i64 {
^e:
  %t1:i64 = add %a, %b
  %t2:i64 = add %b, %a
  %r:i64 = add %t1, %t2
  ret %r
}
)");
  Function &F = *M->Functions[0];
  valueNumberSSA(F);
  const BasicBlock *E = F.entry();
  EXPECT_NE(E->Insts[0].Dst, E->Insts[1].Dst);
}

} // namespace
