//===- tests/dvnt_test.cpp - Dominator-tree value numbering ---------------===//

#include "frontend/Lower.h"
#include "gvn/DVNT.h"
#include "interp/Interpreter.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "pipeline/Pipeline.h"
#include "ssa/SSA.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace epre;
using epre::test::runPass;

namespace {

std::unique_ptr<Module> parse(const char *Src) {
  ParseResult R = parseModule(Src);
  EXPECT_TRUE(R.ok()) << R.Error;
  return std::move(R.M);
}

unsigned countOp(const Function &F, Opcode Op) {
  unsigned N = 0;
  F.forEachBlock([&](const BasicBlock &B) {
    for (const Instruction &I : B.Insts)
      N += I.Op == Op;
  });
  return N;
}

TEST(DVNT, DeletesDominatedRedundancy) {
  auto M = parse(R"(
func @f(%a:i64, %b:i64, %p:i64) -> i64 {
^e:
  %t1:i64 = add %a, %b
  cbr %p, ^x, ^y
^x:
  %t2:i64 = add %a, %b
  %r1:i64 = mul %t2, %t2
  ret %r1
^y:
  %t3:i64 = add %b, %a
  %r2:i64 = mul %t3, %t1
  ret %r2
}
)");
  Function &F = *M->Functions[0];
  DVNTStats S = valueNumberDominatorTreeSSA(F);
  // Both the positional duplicate and the commuted one die (hash-based
  // numbering exploits commutativity, unlike the "simplest" AWZ).
  EXPECT_EQ(S.Redundant, 2u);
  EXPECT_EQ(countOp(F, Opcode::Add), 1u);
  MemoryImage Mem(0);
  EXPECT_EQ(interpret(F, {RtValue::ofI(3), RtValue::ofI(4), RtValue::ofI(1)},
                      Mem)
                .ReturnValue.I,
            49);
  EXPECT_EQ(interpret(F, {RtValue::ofI(3), RtValue::ofI(4), RtValue::ofI(0)},
                      Mem)
                .ReturnValue.I,
            49);
}

TEST(DVNT, DoesNotMergeAcrossSiblingBranches) {
  auto M = parse(R"(
func @f(%a:i64, %b:i64, %p:i64) -> i64 {
^e:
  cbr %p, ^x, ^y
^x:
  %t1:i64 = add %a, %b
  %u:i64 = copy %t1
  br ^j
^y:
  %t2:i64 = add %a, %b
  %u:i64 = copy %t2
  br ^j
^j:
  ret %u
}
)");
  Function &F = *M->Functions[0];
  DVNTStats S = valueNumberDominatorTreeSSA(F);
  // Neither arm dominates the other: the scoped table must not leak.
  EXPECT_EQ(S.Redundant, 0u);
  EXPECT_EQ(countOp(F, Opcode::Add), 2u);
}

TEST(DVNT, MeaninglessAndDuplicatePhis) {
  auto M = parse(R"(
func @f(%a:i64, %p:i64) -> i64 {
^e:
  cbr %p, ^x, ^y
^x:
  br ^j
^y:
  br ^j
^j:
  %m:i64 = phi [%a, ^x], [%a, ^y]
  %d1:i64 = phi [%a, ^x], [%m, ^y]
  %r:i64 = add %m, %d1
  ret %r
}
)");
  Function &F = *M->Functions[0];
  DVNTStats S = valueNumberDominatorTreeSSA(F);
  EXPECT_TRUE(verifyFunction(F, SSAMode::SSA).empty()) << printFunction(F);
  // %m is meaningless (both inputs %a); then %d1 becomes [%a, %a]:
  // meaningless too.
  EXPECT_EQ(S.MeaninglessPhis, 2u);
  MemoryImage Mem(0);
  EXPECT_EQ(interpret(F, {RtValue::ofI(5), RtValue::ofI(1)}, Mem)
                .ReturnValue.I,
            10);
}

TEST(DVNT, PessimisticAboutLoopPhis) {
  // Two identical induction chains: AWZ proves them congruent, DVNT (a
  // pessimistic hash-based method) must not — documenting the difference.
  auto M = parse(R"(
func @f(%n:i64) -> i64 {
^e:
  %z1:i64 = loadi 0
  br ^l
^l:
  %i:i64 = phi [%z1, ^e], [%i2, ^l]
  %j:i64 = phi [%z1, ^e], [%j2, ^l]
  %one:i64 = loadi 1
  %i2:i64 = add %i, %one
  %j2:i64 = add %j, %one
  %c:i64 = cmplt %i2, %n
  cbr %c, ^l, ^x
^x:
  %r:i64 = add %i2, %j2
  ret %r
}
)");
  Function &F = *M->Functions[0];
  DVNTStats S = valueNumberDominatorTreeSSA(F);
  EXPECT_EQ(S.Redundant, 0u);
  EXPECT_EQ(S.RedundantPhis, 0u); // inputs differ until proven otherwise
  MemoryImage Mem(0);
  EXPECT_EQ(interpret(F, {RtValue::ofI(5)}, Mem).ReturnValue.I, 10);
}

TEST(DVNT, FullPhasePreservesBehaviour) {
  const char *Src = R"(
func @f(%a:i64, %n:i64) -> i64 {
^e:
  %z:i64 = loadi 0
  %s:i64 = copy %z
  %i:i64 = copy %z
  br ^l
^l:
  %t1:i64 = add %a, %i
  %t2:i64 = add %i, %a
  %prod:i64 = mul %t1, %t2
  %s:i64 = add %s, %prod
  %one:i64 = loadi 1
  %i:i64 = add %i, %one
  %c:i64 = cmplt %i, %n
  cbr %c, ^l, ^x
^x:
  ret %s
}
)";
  for (int64_t N : {1, 3, 9}) {
    auto M = parse(Src);
    Function &F = *M->Functions[0];
    MemoryImage Mem(0);
    int64_t Before =
        interpret(F, {RtValue::ofI(2), RtValue::ofI(N)}, Mem).ReturnValue.I;
    DVNTStats S = runPass(F, DVNTPass()).lastStats();
    EXPECT_TRUE(verifyFunction(F, SSAMode::NoSSA).empty())
        << printFunction(F);
    EXPECT_GT(S.Redundant, 0u); // t2 commutes into t1
    int64_t After =
        interpret(F, {RtValue::ofI(2), RtValue::ofI(N)}, Mem).ReturnValue.I;
    EXPECT_EQ(Before, After) << "N=" << N;
  }
}

TEST(DVNT, PipelineEngineOption) {
  const char *Src = R"(
function eng(a, b, n)
  integer n
  s = 0.0
  do i = 1, n
    s = s + (a + b) * (b + a)
  end do
  return s
end
)";
  double Ref = 0;
  for (GVNEngine E : {GVNEngine::AWZ, GVNEngine::DVNT}) {
    LowerResult LR = compileMiniFortran(Src, NamingMode::Naive);
    ASSERT_TRUE(LR.ok()) << LR.Error;
    Function &F = *LR.M->find("eng");
    PipelineOptions PO;
    PO.Level = OptLevel::Distribution;
    PO.Engine = E;
    optimizeFunction(F, PO);
    MemoryImage Mem(0);
    ExecResult R = interpret(
        F, {RtValue::ofF(1.5), RtValue::ofF(2.5), RtValue::ofI(40)}, Mem);
    ASSERT_FALSE(R.Trapped) << R.TrapReason;
    if (E == GVNEngine::AWZ)
      Ref = R.ReturnValue.F;
    else
      EXPECT_NEAR(R.ReturnValue.F, Ref, 1e-9 * (1 + std::abs(Ref)));
  }
}

} // namespace
