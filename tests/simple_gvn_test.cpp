//===- tests/simple_gvn_test.cpp - Saleena-Paleri simple GVN --------------===//
///
/// \file
/// The third GVN engine (docs/gvn-engines.md): golden differentials where
/// the AWZ partition provably misses a phi-carried equivalence and the
/// value-expression fixpoint finds it (diamond, loop back-edge, phi-of-phi),
/// the structural never-worse-than-AWZ guarantee over fuzz programs and the
/// whole benchmark suite, the three-way engine agreement property (every
/// corpus program and 500+ generated programs behave identically under the
/// interpreter whichever engine named the values), the engine name
/// round-trip, and the planted first-input-phi fault: caught by the
/// differential oracle, bisected to 'simple-gvn', reduced to a tiny
/// reproducer, and gone when the fault is disabled.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Bisect.h"
#include "fuzz/FuzzGen.h"
#include "fuzz/ModuleOps.h"
#include "fuzz/Oracle.h"
#include "fuzz/Reduce.h"
#include "gvn/SimpleGVN.h"
#include "gvn/ValueNumbering.h"
#include "interp/Interpreter.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "pipeline/Pipeline.h"
#include "suite/Harness.h"
#include "suite/Suite.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace epre;
using namespace epre::fuzz;
using epre::test::runPass;

namespace {

std::unique_ptr<Module> parse(const std::string &Src) {
  ParseResult R = parseModule(Src);
  EXPECT_TRUE(R.ok()) << R.Error;
  return std::move(R.M);
}

/// Runs both engines (full pass, including the SSA sandwich) on fresh
/// parses of \p Src and returns their stats.
struct EnginePair {
  GVNStats AWZ;
  SimpleGVNStats Simple;
};

EnginePair runBothEngines(const std::string &Src) {
  EnginePair E;
  auto MA = parse(Src);
  E.AWZ = runPass<GVNPass>(*MA->Functions[0]).lastStats();
  auto MS = parse(Src);
  E.Simple = runPass<SimpleGVNPass>(*MS->Functions[0]).lastStats();
  return E;
}

/// Interprets fresh parses of \p Src before and after a pass and expects
/// identical integer results for each argument vector.
template <typename PassT>
void expectSameBehavior(const std::string &Src,
                        const std::vector<std::vector<int64_t>> &ArgSets) {
  for (const std::vector<int64_t> &Ints : ArgSets) {
    std::vector<RtValue> Args;
    for (int64_t V : Ints)
      Args.push_back(RtValue::ofI(V));

    auto MRef = parse(Src);
    MemoryImage MemRef(0);
    ExecResult Ref = interpret(*MRef->Functions[0], Args, MemRef);
    ASSERT_TRUE(Ref.ok()) << Ref.TrapReason;

    auto MOpt = parse(Src);
    Function &F = *MOpt->Functions[0];
    runPass<PassT>(F);
    EXPECT_TRUE(verifyFunction(F, SSAMode::NoSSA).empty())
        << printFunction(F);
    MemoryImage MemOpt(0);
    ExecResult Got = interpret(F, Args, MemOpt);
    ASSERT_TRUE(Got.ok()) << Got.TrapReason << "\n" << printFunction(F);
    EXPECT_EQ(Ref.ReturnValue.I, Got.ReturnValue.I) << printFunction(F);
  }
}

//===----------------------------------------------------------------------===//
// Golden differentials: AWZ misses, simple GVN finds
//===----------------------------------------------------------------------===//

/// The phi-carried diamond: x = phi(a, b), w = phi(a+c, b+c). AWZ can never
/// merge z = x + c with w — they have different base keys (op vs phi) and
/// partition refinement only splits — but the value-expression composition
/// rule proves z == w edge by edge.
const char *PhiCarriedDiamond = R"(
func @f(%a:i64, %b:i64, %c:i64) -> i64 {
^entry:
  cbr %c, ^then, ^else
^then:
  %x:i64 = copy %a
  %w:i64 = add %a, %c
  br ^join
^else:
  %x:i64 = copy %b
  %w:i64 = add %b, %c
  br ^join
^join:
  %z:i64 = add %x, %c
  %s:i64 = add %z, %w
  ret %s
}
)";

TEST(SimpleGVN, PhiCarriedDiamondDifferential) {
  EnginePair E = runBothEngines(PhiCarriedDiamond);
  EXPECT_EQ(E.AWZ.MergedDefs, 0u);      // AWZ provably cannot see it
  EXPECT_GE(E.Simple.MergedDefs, 1u);   // the composition rule does
  EXPECT_GE(E.Simple.PhiCarried, 1u);
  EXPECT_GT(E.Simple.redundanciesFound(), E.AWZ.MergedDefs);
  expectSameBehavior<SimpleGVNPass>(
      PhiCarriedDiamond, {{3, 4, 1}, {3, 4, 0}, {-7, 2, 5}});
}

/// The same equivalence carried around a loop back-edge: j tracks i + c
/// through phi(i0 + c, inext + c) at the loop header, so the exit's
/// recomputation of i + c is the phi's value.
const char *PhiCarriedLoop = R"(
func @loopcarried(%n:i64, %c:i64) -> i64 {
^entry:
  %z:i64 = loadi 0
  %j0:i64 = add %z, %c
  %i:i64 = copy %z
  %j:i64 = copy %j0
  br ^head
^head:
  %t:i64 = cmplt %i, %n
  cbr %t, ^body, ^exit
^body:
  %one:i64 = loadi 1
  %inext:i64 = add %i, %one
  %jnext:i64 = add %inext, %c
  %i:i64 = copy %inext
  %j:i64 = copy %jnext
  br ^head
^exit:
  %x:i64 = add %i, %c
  %r:i64 = add %x, %j
  ret %r
}
)";

TEST(SimpleGVN, PhiCarriedLoopBackEdgeDifferential) {
  EnginePair E = runBothEngines(PhiCarriedLoop);
  EXPECT_EQ(E.AWZ.MergedDefs, 0u);
  EXPECT_GE(E.Simple.MergedDefs, 1u);
  EXPECT_GE(E.Simple.PhiCarried, 1u);
  expectSameBehavior<SimpleGVNPass>(PhiCarriedLoop,
                                    {{0, 5}, {1, 5}, {4, -3}});
}

/// Two stacked joins: the second join's phi ranges over the first join's
/// phi, so proving z == s requires composing through a phi whose incoming
/// value is itself a phi.
const char *PhiOfPhi = R"(
func @phiofphi(%a:i64, %b:i64, %c:i64, %d:i64) -> i64 {
^entry:
  cbr %d, ^t1, ^e1
^t1:
  %x:i64 = copy %a
  br ^m
^e1:
  %x:i64 = copy %b
  br ^m
^m:
  %w:i64 = add %x, %c
  cbr %c, ^t2, ^e2
^t2:
  %y:i64 = copy %x
  %s:i64 = copy %w
  br ^join
^e2:
  %y:i64 = copy %d
  %s2:i64 = add %d, %c
  %s:i64 = copy %s2
  br ^join
^join:
  %z:i64 = add %y, %c
  %r:i64 = add %z, %s
  ret %r
}
)";

TEST(SimpleGVN, PhiOfPhiDifferential) {
  EnginePair E = runBothEngines(PhiOfPhi);
  EXPECT_EQ(E.AWZ.MergedDefs, 0u);
  EXPECT_GE(E.Simple.MergedDefs, 1u);
  EXPECT_GE(E.Simple.PhiCarried, 1u);
  expectSameBehavior<SimpleGVNPass>(
      PhiOfPhi, {{1, 2, 3, 4}, {1, 2, 0, 4}, {1, 2, 3, 0}, {9, -1, 0, 0}});
}

/// phi(copy a, copy a) is the value a: the identity rule collapses it, and
/// the closure then merges the add that consumed the phi with the add over
/// a directly. AWZ sees neither (the phi and the plain add have different
/// base keys).
TEST(SimpleGVN, PhiIdentityUnlocksClosure) {
  const char *Src = R"(
func @f(%a:i64, %b:i64, %p:i64) -> i64 {
^entry:
  cbr %p, ^x, ^y
^x:
  %t:i64 = copy %a
  br ^j
^y:
  %t:i64 = copy %a
  br ^j
^j:
  %u:i64 = add %t, %b
  %w:i64 = add %a, %b
  %r:i64 = add %u, %w
  ret %r
}
)";
  EnginePair E = runBothEngines(Src);
  // AWZ merges the two identical copies of a, nothing more: the phi and
  // the adds keep distinct classes.
  EXPECT_EQ(E.AWZ.MergedDefs, 1u);
  EXPECT_GE(E.Simple.PhiSimplified, 1u);
  EXPECT_GT(E.Simple.MergedDefs, E.AWZ.MergedDefs);
  expectSameBehavior<SimpleGVNPass>(Src, {{3, 4, 1}, {3, 4, 0}});
}

/// On a program AWZ fully handles, simple GVN must agree: it starts from
/// the AWZ fixpoint and only coarsens.
TEST(SimpleGVN, AgreesWithAWZWhereAWZSucceeds) {
  const char *Src = R"(
func @f(%a:i64, %b:i64, %c:i64) -> i64 {
^entry:
  cbr %c, ^then, ^else
^then:
  %x:i64 = add %a, %b
  br ^join
^else:
  %y:i64 = add %a, %b
  br ^join
^join:
  %z:i64 = add %a, %b
  ret %z
}
)";
  EnginePair E = runBothEngines(Src);
  EXPECT_EQ(E.AWZ.MergedDefs, 2u);
  EXPECT_EQ(E.Simple.MergedDefs, 2u);
}

//===----------------------------------------------------------------------===//
// Structural guarantee: never worse than AWZ
//===----------------------------------------------------------------------===//

TEST(SimpleGVN, NeverWorseThanAWZOnFuzzPrograms) {
  for (const std::string &Shape : generatorShapeNames()) {
    GeneratorOptions GO;
    ASSERT_TRUE(shapeOptions(Shape, GO));
    for (uint64_t Seed = 1; Seed <= 15; ++Seed) {
      FuzzProgram P = generateProgram(Seed, GO, Shape);
      EnginePair E = runBothEngines(P.Text);
      EXPECT_GE(E.Simple.MergedDefs, E.AWZ.MergedDefs)
          << Shape << " seed " << Seed;
      EXPECT_GE(E.Simple.redundanciesFound(), E.AWZ.MergedDefs)
          << Shape << " seed " << Seed;
    }
  }
}

/// The suite-level acceptance bar: on every one of the 50 routines the
/// simple engine reports at least as many redundancies as AWZ through the
/// full reassociation pipeline, strictly more on at least three, and every
/// routine still compiles and runs.
TEST(SimpleGVN, SuiteRedundanciesDominateAWZ) {
  unsigned StrictlyMore = 0;
  for (const Routine &R : benchmarkSuite()) {
    PipelineOptions A;
    A.Engine = GVNEngine::AWZ;
    Measurement MA = measureRoutine(R, OptLevel::Reassociation, &A);
    ASSERT_TRUE(MA.ok()) << R.Name << ": "
                         << (MA.CompileOk ? MA.TrapReason : MA.CompileError);

    PipelineOptions S;
    S.Engine = GVNEngine::SaleenaPaleri;
    Measurement MS = measureRoutine(R, OptLevel::Reassociation, &S);
    ASSERT_TRUE(MS.ok()) << R.Name << ": "
                         << (MS.CompileOk ? MS.TrapReason : MS.CompileError);

    uint64_t FoundA = MA.Stats.gvnRedundanciesFound();
    uint64_t FoundS = MS.Stats.gvnRedundanciesFound();
    EXPECT_GE(FoundS, FoundA) << R.Name;
    StrictlyMore += FoundS > FoundA;
  }
  EXPECT_GE(StrictlyMore, 3u);
}

//===----------------------------------------------------------------------===//
// Three-way engine agreement
//===----------------------------------------------------------------------===//

/// Reassociation-level configs differing only in the GVN engine. Strict FP
/// (AllowFPReassoc off) keeps every comparison bit-exact.
std::vector<OracleConfig> engineConfigs() {
  std::vector<OracleConfig> Configs;
  for (GVNEngine E : AllGVNEngines) {
    OracleConfig C;
    C.Name = std::string("engine/") + gvnEngineName(E);
    C.PO.Level = OptLevel::Reassociation;
    C.PO.Engine = E;
    C.PO.Naming = InputNaming::Hashed;
    C.PO.AllowFPReassoc = false;
    C.PO.Verify = false;
    Configs.push_back(C);
  }
  return Configs;
}

std::vector<std::string> corpusFiles() {
  std::vector<std::string> Files;
  for (const auto &E : std::filesystem::directory_iterator(EPRE_CORPUS_DIR))
    if (E.path().extension() == ".iloc")
      Files.push_back(E.path().string());
  std::sort(Files.begin(), Files.end());
  return Files;
}

TEST(EngineAgreement, AllCorpusProgramsAgree) {
  OracleOptions OO;
  std::vector<OracleConfig> Configs = engineConfigs();
  for (const std::string &Path : corpusFiles()) {
    std::ifstream In(Path);
    ASSERT_TRUE(In.good()) << Path;
    std::stringstream SS;
    SS << In.rdbuf();

    FuzzProgram P;
    P.Text = SS.str();
    P.Shape = "corpus";
    P.MemBytes = 4096;
    std::unique_ptr<Module> M = parseModuleText(P.Text);
    ASSERT_NE(M, nullptr) << Path;
    int64_t NextI = 7;
    double NextF = 1.5;
    for (Reg R : M->Functions[0]->params()) {
      if (M->Functions[0]->regType(R) == Type::I64) {
        P.Args.push_back(RtValue::ofI(NextI));
        NextI = -NextI + 5;
      } else {
        P.Args.push_back(RtValue::ofF(NextF));
        NextF = -NextF + 0.75;
      }
    }

    OracleResult OR = runDifferentialOracle(P, OO, Configs);
    EXPECT_FALSE(OR.Inconclusive) << Path;
    EXPECT_FALSE(OR.Mismatch) << Path;
    for (const OracleFinding &F : OR.Findings)
      ADD_FAILURE() << Path << " [" << F.Config << "] "
                    << mismatchKindName(F.Kind) << ": " << F.Detail;
  }
}

/// 500+ generated programs, each run under all three engines and compared
/// against the unoptimized reference: same trap verdict, same return
/// value, same memory image. The oracle's comparison logic does the
/// heavy lifting; this instantiates it for the engine axis alone.
TEST(EngineAgreement, FuzzedProgramsAgreeAcrossEngines) {
  OracleOptions OO;
  std::vector<OracleConfig> Configs = engineConfigs();
  std::vector<std::string> Shapes = generatorShapeNames();
  ASSERT_FALSE(Shapes.empty());
  const uint64_t SeedsPerShape = (500 + Shapes.size() - 1) / Shapes.size();

  uint64_t Ran = 0;
  for (const std::string &Shape : Shapes) {
    GeneratorOptions GO;
    ASSERT_TRUE(shapeOptions(Shape, GO));
    for (uint64_t Seed = 1; Seed <= SeedsPerShape; ++Seed) {
      FuzzProgram P = generateProgram(Seed, GO, Shape);
      OracleResult OR = runDifferentialOracle(P, OO, Configs);
      ++Ran;
      EXPECT_FALSE(OR.Mismatch) << Shape << " seed " << Seed;
      for (const OracleFinding &F : OR.Findings)
        ADD_FAILURE() << Shape << " seed " << Seed << " [" << F.Config
                      << "] " << mismatchKindName(F.Kind) << ": " << F.Detail;
    }
  }
  EXPECT_GE(Ran, 500u);
}

//===----------------------------------------------------------------------===//
// Engine names
//===----------------------------------------------------------------------===//

TEST(EngineNames, RoundTripAndRejection) {
  for (GVNEngine E : AllGVNEngines) {
    GVNEngine Back;
    ASSERT_TRUE(parseGVNEngine(gvnEngineName(E), Back)) << gvnEngineName(E);
    EXPECT_EQ(Back, E) << gvnEngineName(E);
  }
  GVNEngine E;
  EXPECT_FALSE(parseGVNEngine("", E));
  EXPECT_FALSE(parseGVNEngine("simple", E));
  EXPECT_FALSE(parseGVNEngine("AWZ", E));

  // The rejection message material: every engine is listed.
  std::string Names = gvnEngineNames();
  EXPECT_NE(Names.find("awz"), std::string::npos);
  EXPECT_NE(Names.find("dvnt"), std::string::npos);
  EXPECT_NE(Names.find("simple-gvn"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Planted fault
//===----------------------------------------------------------------------===//

/// RAII guard: the fault flag is process-global, so never leak it into
/// other tests.
struct FaultGuard {
  explicit FaultGuard(bool On) { fault::setSimpleGVNFirstInputPhi(On); }
  ~FaultGuard() { fault::setSimpleGVNFirstInputPhi(false); }
};

TEST(SimpleGVNFault, FlagRoundTrip) {
  EXPECT_FALSE(fault::simpleGVNFirstInputPhi());
  {
    FaultGuard Fault(true);
    EXPECT_TRUE(fault::simpleGVNFirstInputPhi());
  }
  EXPECT_FALSE(fault::simpleGVNFirstInputPhi());
}

/// The fault merges every phi with its first input, and the closure then
/// propagates the bogus equivalence: v = x + p (x a phi of a, b) becomes
/// congruent to a + p or b + p, collapsing a subtraction that is nonzero
/// on one diamond arm. Whichever input the fault picks, one of the two
/// symmetric subtractions breaks on one arm.
TEST(SimpleGVNFault, MiscompilesPhiConsumer) {
  const char *Src = R"(
func @f(%a:i64, %b:i64, %p:i64) -> i64 {
^entry:
  cbr %p, ^t, ^e
^t:
  %x:i64 = copy %a
  br ^j
^e:
  %x:i64 = copy %b
  br ^j
^j:
  %u1:i64 = add %a, %p
  %u2:i64 = add %b, %p
  %v:i64 = add %x, %p
  %r1:i64 = sub %u1, %v
  %r2:i64 = sub %v, %u2
  %k:i64 = loadi 1000
  %m:i64 = mul %r2, %k
  %r:i64 = add %r1, %m
  ret %r
}
)";
  // Sound pass first: behavior must be unchanged on both arms.
  expectSameBehavior<SimpleGVNPass>(Src, {{3, 40, 1}, {3, 40, 0}});

  FaultGuard Fault(true);
  auto MOpt = parse(Src);
  Function &F = *MOpt->Functions[0];
  runPass<SimpleGVNPass>(F);

  bool Miscompiled = false;
  for (int64_t P : {1, 0}) { // one argument per diamond arm
    std::vector<RtValue> Args = {RtValue::ofI(3), RtValue::ofI(40),
                                 RtValue::ofI(P)};
    auto MRef = parse(Src);
    MemoryImage MemRef(0);
    ExecResult Ref = interpret(*MRef->Functions[0], Args, MemRef);
    ASSERT_TRUE(Ref.ok());

    MemoryImage MemOpt(0);
    ExecResult Got = interpret(F, Args, MemOpt);
    Miscompiled |= !Got.ok() || Ref.ReturnValue.I != Got.ReturnValue.I;
  }
  EXPECT_TRUE(Miscompiled)
      << "the planted fault should break one diamond arm\n"
      << printFunction(F);
}

TEST(SimpleGVNFault, CaughtBisectedAndReduced) {
  FaultGuard Fault(true);

  OracleOptions OO;
  std::vector<OracleConfig> Configs = oracleConfigs(/*Quick=*/true);
  GeneratorOptions GO;
  ASSERT_TRUE(shapeOptions("branchy", GO));

  // Scan seeds until the fault produces a mismatch that bisects straight
  // to the guilty 'simple-gvn' pass (some seeds surface the corruption
  // only after a later cleanup pass).
  bool Demonstrated = false;
  for (uint64_t Seed = 1; Seed <= 40 && !Demonstrated; ++Seed) {
    FuzzProgram P = generateProgram(Seed, GO, "branchy");
    OracleResult OR = runDifferentialOracle(P, OO, Configs);
    if (!OR.Mismatch)
      continue;
    ASSERT_FALSE(OR.Findings.empty());

    OracleConfig C;
    ASSERT_TRUE(
        findOracleConfig(OR.Findings.front().Config, /*Quick=*/true, C));

    BisectResult B = bisectMiscompile(P, C, OO);
    ASSERT_TRUE(B.Bisected) << "seed " << Seed;
    if (B.GuiltyPass != "simple-gvn")
      continue; // corruption surfaced downstream; try another seed

    ReduceResult R = reduceMiscompile(P, C, OO);
    ASSERT_TRUE(R.Reduced) << "seed " << Seed;
    EXPECT_LE(R.InstsAfter, 20u) << "seed " << Seed;
    EXPECT_LT(R.InstsAfter, R.InstsBefore);

    // The reduced program still fails with the same signature...
    FuzzProgram Q = P;
    Q.Text = R.Text;
    EXPECT_EQ(runConfigOnce(Q, C, OO).Kind, R.Signature);

    // ...and is clean once the fault is turned off, so the reproducer
    // captures the planted bug and not a generator artifact.
    fault::setSimpleGVNFirstInputPhi(false);
    EXPECT_EQ(runConfigOnce(Q, C, OO).Kind, MismatchKind::None);
    fault::setSimpleGVNFirstInputPhi(true);

    Demonstrated = true;
  }
  EXPECT_TRUE(Demonstrated)
      << "no seed in range was caught, bisected to 'simple-gvn', and reduced";
}

} // namespace
