//===- tests/eval_interp_test.cpp - Evaluation semantics & interpreter ----===//

#include "interp/Interpreter.h"
#include "ir/Eval.h"
#include "ir/IRParser.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

using namespace epre;

namespace {

RtValue evalBin(Opcode Op, RtValue A, RtValue B) {
  Instruction I = Instruction::makeBinary(Op, A.Ty, 1, 2, 3);
  RtValue Out;
  EXPECT_TRUE(evalPure(I, {A, B}, Out)) << opcodeName(Op);
  return Out;
}

TEST(Eval, IntegerArithmetic) {
  EXPECT_EQ(evalBin(Opcode::Add, RtValue::ofI(2), RtValue::ofI(3)).I, 5);
  EXPECT_EQ(evalBin(Opcode::Sub, RtValue::ofI(2), RtValue::ofI(3)).I, -1);
  EXPECT_EQ(evalBin(Opcode::Mul, RtValue::ofI(-4), RtValue::ofI(3)).I, -12);
  EXPECT_EQ(evalBin(Opcode::Div, RtValue::ofI(7), RtValue::ofI(2)).I, 3);
  EXPECT_EQ(evalBin(Opcode::Div, RtValue::ofI(-7), RtValue::ofI(2)).I, -3);
  EXPECT_EQ(evalBin(Opcode::Mod, RtValue::ofI(7), RtValue::ofI(3)).I, 1);
  EXPECT_EQ(evalBin(Opcode::Mod, RtValue::ofI(-7), RtValue::ofI(3)).I, -1);
  EXPECT_EQ(evalBin(Opcode::Min, RtValue::ofI(3), RtValue::ofI(-5)).I, -5);
  EXPECT_EQ(evalBin(Opcode::Max, RtValue::ofI(3), RtValue::ofI(-5)).I, 3);
}

TEST(Eval, IntegerOverflowWraps) {
  int64_t Max = std::numeric_limits<int64_t>::max();
  EXPECT_EQ(evalBin(Opcode::Add, RtValue::ofI(Max), RtValue::ofI(1)).I,
            std::numeric_limits<int64_t>::min());
}

TEST(Eval, DivisionTraps) {
  Instruction I = Instruction::makeBinary(Opcode::Div, Type::I64, 1, 2, 3);
  RtValue Out;
  EXPECT_FALSE(evalPure(I, {RtValue::ofI(1), RtValue::ofI(0)}, Out));
  EXPECT_FALSE(evalPure(
      I, {RtValue::ofI(std::numeric_limits<int64_t>::min()),
          RtValue::ofI(-1)},
      Out));
  I.Op = Opcode::Mod;
  EXPECT_FALSE(evalPure(I, {RtValue::ofI(1), RtValue::ofI(0)}, Out));
}

TEST(Eval, ShiftsMaskAmount) {
  EXPECT_EQ(evalBin(Opcode::Shl, RtValue::ofI(1), RtValue::ofI(64)).I, 1);
  EXPECT_EQ(evalBin(Opcode::Shl, RtValue::ofI(1), RtValue::ofI(3)).I, 8);
  EXPECT_EQ(evalBin(Opcode::Shr, RtValue::ofI(-8), RtValue::ofI(1)).I, -4);
}

TEST(Eval, FloatArithmeticIsIEEE) {
  EXPECT_EQ(evalBin(Opcode::Div, RtValue::ofF(1.0), RtValue::ofF(0.0)).F,
            std::numeric_limits<double>::infinity());
  RtValue NaN =
      evalBin(Opcode::Div, RtValue::ofF(0.0), RtValue::ofF(0.0));
  EXPECT_TRUE(std::isnan(NaN.F));
  EXPECT_EQ(evalBin(Opcode::Add, RtValue::ofF(0.1), RtValue::ofF(0.2)).F,
            0.1 + 0.2);
}

TEST(Eval, Comparisons) {
  EXPECT_EQ(evalBin(Opcode::CmpLt, RtValue::ofI(1), RtValue::ofI(2)).I, 1);
  EXPECT_EQ(evalBin(Opcode::CmpGe, RtValue::ofI(1), RtValue::ofI(2)).I, 0);
  // NaN compares false with everything except Ne.
  RtValue NaN = RtValue::ofF(std::nan(""));
  EXPECT_EQ(evalBin(Opcode::CmpEq, NaN, NaN).I, 0);
  EXPECT_EQ(evalBin(Opcode::CmpNe, NaN, NaN).I, 1);
  EXPECT_EQ(evalBin(Opcode::CmpLe, NaN, RtValue::ofF(1.0)).I, 0);
}

TEST(Eval, Conversions) {
  Instruction I2F = Instruction::makeUnary(Opcode::I2F, Type::I64, 1, 2);
  RtValue Out;
  ASSERT_TRUE(evalPure(I2F, {RtValue::ofI(-3)}, Out));
  EXPECT_EQ(Out.F, -3.0);
  Instruction F2I = Instruction::makeUnary(Opcode::F2I, Type::F64, 1, 2);
  ASSERT_TRUE(evalPure(F2I, {RtValue::ofF(3.9)}, Out));
  EXPECT_EQ(Out.I, 3); // truncation toward zero, FORTRAN style
  ASSERT_TRUE(evalPure(F2I, {RtValue::ofF(-3.9)}, Out));
  EXPECT_EQ(Out.I, -3);
  EXPECT_FALSE(evalPure(F2I, {RtValue::ofF(1e300)}, Out));
  EXPECT_FALSE(evalPure(F2I, {RtValue::ofF(std::nan(""))}, Out));
}

TEST(Eval, Intrinsics) {
  auto call1 = [](Intrinsic In, RtValue A) {
    Instruction I = Instruction::makeCall(In, A.Ty, 1, {2});
    RtValue Out;
    EXPECT_TRUE(evalPure(I, {A}, Out));
    return Out;
  };
  EXPECT_EQ(call1(Intrinsic::Sqrt, RtValue::ofF(16.0)).F, 4.0);
  EXPECT_EQ(call1(Intrinsic::Abs, RtValue::ofF(-2.5)).F, 2.5);
  EXPECT_EQ(call1(Intrinsic::Abs, RtValue::ofI(-7)).I, 7);
  EXPECT_EQ(call1(Intrinsic::Floor, RtValue::ofF(2.7)).F, 2.0);

  Instruction Sign =
      Instruction::makeCall(Intrinsic::Sign, Type::F64, 1, {2, 3});
  RtValue Out;
  ASSERT_TRUE(evalPure(Sign, {RtValue::ofF(-3.0), RtValue::ofF(2.0)}, Out));
  EXPECT_EQ(Out.F, 3.0);
  ASSERT_TRUE(evalPure(Sign, {RtValue::ofF(3.0), RtValue::ofF(-2.0)}, Out));
  EXPECT_EQ(Out.F, -3.0);
  // FORTRAN SIGN(a, 0) is +|a|.
  ASSERT_TRUE(evalPure(Sign, {RtValue::ofF(-3.0), RtValue::ofF(0.0)}, Out));
  EXPECT_EQ(Out.F, 3.0);
}

TEST(Eval, RtValueIdentity) {
  EXPECT_TRUE(RtValue::ofI(5).identical(RtValue::ofI(5)));
  EXPECT_FALSE(RtValue::ofI(5).identical(RtValue::ofF(5.0)));
  double NaN = std::nan("");
  EXPECT_TRUE(RtValue::ofF(NaN).identical(RtValue::ofF(NaN)));
  EXPECT_FALSE(RtValue::ofF(0.0).identical(RtValue::ofF(-0.0)));
}

TEST(MemoryImage, AllocateAlignsAndZeroes) {
  MemoryImage Mem(12);
  int64_t A = Mem.allocate(8);
  EXPECT_EQ(A % 8, 0);
  EXPECT_GE(A, 12);
  EXPECT_EQ(Mem.loadI64(A), 0);
  Mem.storeF64(A, 1.5);
  EXPECT_EQ(Mem.loadF64(A), 1.5);
}

TEST(MemoryImage, HashDetectsChanges) {
  MemoryImage A(64), B(64);
  EXPECT_EQ(A.hash(), B.hash());
  B.storeI64(8, 1);
  EXPECT_NE(A.hash(), B.hash());
}

TEST(MemoryImage, PinnedDigest) {
  // The digest (size mixed first, then native-endian 8-byte words, then a
  // zero-padded tail word) is a cross-run contract for differential
  // testing; these constants pin the little-endian value.
  MemoryImage Empty(0);
  EXPECT_EQ(Empty.hash(), 0x23232730168c2889ULL);

  MemoryImage A(24);
  A.storeI64(8, 0x0123456789abcdefLL);
  EXPECT_EQ(A.hash(), 0xdf1d98e5af5765d6ULL);

  // A size that is not a multiple of 8 exercises the padded tail word.
  MemoryImage Tail;
  Tail.Bytes = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13};
  EXPECT_EQ(Tail.hash(), 0xdc9a054db371928dULL);

  // Trailing zero bytes are not free: the size participates.
  MemoryImage A2(32);
  A2.storeI64(8, 0x0123456789abcdefLL);
  EXPECT_NE(A2.hash(), A.hash());
}

TEST(Interpreter, CountsEveryOperation) {
  ParseResult R = parseModule(R"(
func @f() -> i64 {
^e:
  %a:i64 = loadi 2
  %b:i64 = loadi 3
  %c:i64 = add %a, %b
  ret %c
}
)");
  ASSERT_TRUE(R.ok()) << R.Error;
  MemoryImage Mem(0);
  ExecResult E = interpret(*R.M->Functions[0], {}, Mem);
  ASSERT_TRUE(E.ok());
  EXPECT_EQ(E.ReturnValue.I, 5);
  EXPECT_EQ(E.DynOps, 4u); // loadi, loadi, add, ret
  EXPECT_EQ(E.OpCounts[unsigned(Opcode::LoadI)], 2u);
  EXPECT_EQ(E.OpCounts[unsigned(Opcode::Add)], 1u);
  EXPECT_EQ(E.OpCounts[unsigned(Opcode::Ret)], 1u);
}

TEST(Interpreter, PhisCostNothingAndReadInParallel) {
  // Swap phis: b1 swaps x and y each iteration via phis.
  ParseResult R = parseModule(R"(
func @f(%n:i64) -> i64 {
^e:
  %x0:i64 = loadi 1
  %y0:i64 = loadi 2
  %i0:i64 = loadi 0
  br ^l
^l:
  %x:i64 = phi [%x0, ^e], [%y, ^l]
  %y:i64 = phi [%y0, ^e], [%x, ^l]
  %i:i64 = phi [%i0, ^e], [%i1, ^l]
  %one:i64 = loadi 1
  %i1:i64 = add %i, %one
  %c:i64 = cmplt %i1, %n
  cbr %c, ^l, ^x2
^x2:
  %ten:i64 = loadi 10
  %r:i64 = mul %x, %ten
  %r2:i64 = add %r, %y
  ret %r2
}
)");
  ASSERT_TRUE(R.ok()) << R.Error;
  MemoryImage Mem(0);
  // After 1 iteration: x=1,y=2 at the phi read, i1=1 ends loop (n=1):
  // at exit x/y hold the *entry* values of the last iteration.
  ExecResult E1 = interpret(*R.M->Functions[0], {RtValue::ofI(1)}, Mem);
  ASSERT_TRUE(E1.ok());
  EXPECT_EQ(E1.ReturnValue.I, 12);
  // Two iterations: swapped once.
  ExecResult E2 = interpret(*R.M->Functions[0], {RtValue::ofI(2)}, Mem);
  ASSERT_TRUE(E2.ok());
  EXPECT_EQ(E2.ReturnValue.I, 21);
}

TEST(Interpreter, TrapsOnOutOfBounds) {
  ParseResult R = parseModule(R"(
func @f(%a:i64) -> f64 {
^e:
  %v:f64 = load %a
  ret %v
}
)");
  ASSERT_TRUE(R.ok()) << R.Error;
  MemoryImage Mem(16);
  ExecResult Ok = interpret(*R.M->Functions[0], {RtValue::ofI(8)}, Mem);
  EXPECT_TRUE(Ok.ok());
  ExecResult Bad = interpret(*R.M->Functions[0], {RtValue::ofI(9)}, Mem);
  EXPECT_TRUE(Bad.Trapped); // 9+8 > 16
  // The diagnostic carries the faulting address and the full location.
  EXPECT_EQ(Bad.TrapReason,
            "load out of bounds at address 9 (in @f, block ^e, inst 0)");
  EXPECT_EQ(Bad.TrapFunction, "f");
  EXPECT_EQ(Bad.TrapBlock, "e");
  EXPECT_EQ(Bad.TrapInstIndex, 0u);
  ExecResult Neg = interpret(*R.M->Functions[0], {RtValue::ofI(-1)}, Mem);
  EXPECT_TRUE(Neg.Trapped);
  EXPECT_NE(Neg.TrapReason.find("at address -1"), std::string::npos)
      << Neg.TrapReason;
}

TEST(Interpreter, TrapReportsLocationOnDivByZero) {
  ParseResult R = parseModule(R"(
func @f(%a:i64) -> i64 {
^e:
  %z:i64 = loadi 0
  br ^b1
^b1:
  %q:i64 = div %a, %z
  ret %q
}
)");
  ASSERT_TRUE(R.ok()) << R.Error;
  MemoryImage Mem(0);
  ExecResult E = interpret(*R.M->Functions[0], {RtValue::ofI(7)}, Mem);
  ASSERT_TRUE(E.Trapped);
  EXPECT_EQ(E.TrapReason,
            "arithmetic trap in div (in @f, block ^b1, inst 0)");
  EXPECT_EQ(E.TrapFunction, "f");
  EXPECT_EQ(E.TrapBlock, "b1");
  EXPECT_EQ(E.TrapInstIndex, 0u);
  // Counters stay consistent across the trap.
  uint64_t Sum = 0;
  for (uint64_t C : E.OpCounts)
    Sum += C;
  EXPECT_EQ(Sum, E.DynOps);
}

TEST(Interpreter, TrapsOnOpLimit) {
  ParseResult R = parseModule(R"(
func @f() {
^e:
  br ^e
}
)");
  ASSERT_TRUE(R.ok()) << R.Error;
  MemoryImage Mem(0);
  ExecLimits Lim;
  Lim.MaxOps = 1000;
  ExecResult E = interpret(*R.M->Functions[0], {}, Mem, Lim);
  ASSERT_TRUE(E.Trapped);
  EXPECT_EQ(E.TrapReason,
            "operation limit exceeded (in @f, block ^e, inst 0)");
  EXPECT_EQ(E.TrapFunction, "f");
  EXPECT_EQ(E.TrapBlock, "e");
  // The op that crossed the limit is counted: DynOps == sum(OpCounts).
  EXPECT_EQ(E.DynOps, Lim.MaxOps + 1);
  EXPECT_EQ(E.OpCounts[unsigned(Opcode::Br)], Lim.MaxOps + 1);
}

TEST(Interpreter, PreExecutionTrapHasFunctionButNoBlock) {
  ParseResult R = parseModule("func @f(%a:i64) { ^e: ret }");
  ASSERT_TRUE(R.ok()) << R.Error;
  MemoryImage Mem(0);
  ExecResult E = interpret(*R.M->Functions[0], {}, Mem);
  ASSERT_TRUE(E.Trapped);
  EXPECT_EQ(E.TrapReason, "argument count mismatch (in @f)");
  EXPECT_EQ(E.TrapFunction, "f");
  EXPECT_TRUE(E.TrapBlock.empty());
}

TEST(Interpreter, TrapKindClassifiesFuelExhaustion) {
  ParseResult R = parseModule("func @f() { ^e: br ^e }");
  ASSERT_TRUE(R.ok()) << R.Error;
  MemoryImage Mem(0);
  ExecLimits Lim;
  Lim.MaxOps = 16; // caller-configurable: tiny budgets work too
  ExecResult E = interpret(*R.M->Functions[0], {}, Mem, Lim);
  ASSERT_TRUE(E.Trapped);
  EXPECT_EQ(E.Kind, TrapKind::FuelExhausted);
  EXPECT_STREQ(trapKindName(E.Kind), "fuel-exhausted");
}

TEST(Interpreter, TrapKindClassifiesArithmeticAndMemory) {
  ParseResult R = parseModule(R"(
func @f(%a:i64) -> i64 {
^e:
  %z:i64 = loadi 0
  %q:i64 = div %a, %z
  ret %q
}
)");
  ASSERT_TRUE(R.ok()) << R.Error;
  MemoryImage Mem(0);
  ExecResult E = interpret(*R.M->Functions[0], {RtValue::ofI(1)}, Mem);
  ASSERT_TRUE(E.Trapped);
  EXPECT_EQ(E.Kind, TrapKind::ArithmeticTrap);
  EXPECT_STREQ(trapKindName(E.Kind), "arithmetic-trap");

  ParseResult R2 = parseModule(R"(
func @g(%a:i64) -> i64 {
^e:
  %v:i64 = load %a
  ret %v
}
)");
  ASSERT_TRUE(R2.ok()) << R2.Error;
  MemoryImage Mem2(8);
  ExecResult E2 = interpret(*R2.M->Functions[0], {RtValue::ofI(64)}, Mem2);
  ASSERT_TRUE(E2.Trapped);
  EXPECT_EQ(E2.Kind, TrapKind::MemoryOutOfBounds);

  // A clean run reports TrapKind::None.
  ExecResult Ok = interpret(*R2.M->Functions[0], {RtValue::ofI(0)}, Mem2);
  ASSERT_FALSE(Ok.Trapped);
  EXPECT_EQ(Ok.Kind, TrapKind::None);
}

TEST(Interpreter, TrapKindClassifiesArgumentMismatch) {
  ParseResult R = parseModule("func @f(%a:i64) { ^e: ret }");
  ASSERT_TRUE(R.ok()) << R.Error;
  MemoryImage Mem(0);
  ExecResult E = interpret(*R.M->Functions[0], {}, Mem);
  ASSERT_TRUE(E.Trapped);
  EXPECT_EQ(E.Kind, TrapKind::ArgumentMismatch);
}

TEST(Interpreter, ArgumentChecking) {
  ParseResult R = parseModule("func @f(%a:i64) { ^e: ret }");
  ASSERT_TRUE(R.ok()) << R.Error;
  MemoryImage Mem(0);
  EXPECT_TRUE(interpret(*R.M->Functions[0], {}, Mem).Trapped);
  EXPECT_TRUE(
      interpret(*R.M->Functions[0], {RtValue::ofF(1.0)}, Mem).Trapped);
  EXPECT_FALSE(
      interpret(*R.M->Functions[0], {RtValue::ofI(1)}, Mem).Trapped);
}

} // namespace
