//===- tests/opt_test.cpp - Baseline optimizer passes ---------------------===//

#include "interp/Interpreter.h"
#include "ir/IRParser.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "opt/ConstantPropagation.h"
#include "opt/CopyCoalescing.h"
#include "opt/DeadCodeElim.h"
#include "opt/Peephole.h"
#include "opt/SimplifyCFG.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace epre;
using epre::test::runPass;
using epre::test::runPassStat;

namespace {

std::unique_ptr<Module> parse(const char *Src) {
  ParseResult R = parseModule(Src);
  EXPECT_TRUE(R.ok()) << R.Error;
  return std::move(R.M);
}

unsigned countOp(const Function &F, Opcode Op) {
  unsigned N = 0;
  F.forEachBlock([&](const BasicBlock &B) {
    for (const Instruction &I : B.Insts)
      N += I.Op == Op;
  });
  return N;
}

unsigned countInsts(const Function &F) { return F.staticOperationCount(); }

// --- Constant propagation --------------------------------------------------

TEST(ConstProp, FoldsThroughArithmetic) {
  auto M = parse(R"(
func @f() -> i64 {
^e:
  %a:i64 = loadi 6
  %b:i64 = loadi 7
  %c:i64 = mul %a, %b
  %d:i64 = add %c, %c
  ret %d
}
)");
  Function &F = *M->Functions[0];
  EXPECT_TRUE(runPassStat<SCCPPass>(F, "changed"));
  const BasicBlock *E = F.entry();
  EXPECT_EQ(E->Insts[3].Op, Opcode::LoadI);
  EXPECT_EQ(E->Insts[3].IImm, 84);
}

TEST(ConstProp, FoldsBranchesAndPrunesPaths) {
  // The condition is constant; the false arm assigns a non-constant, but
  // with conditional propagation %v is still known at the join.
  auto M = parse(R"(
func @f(%x:i64) -> i64 {
^e:
  %one:i64 = loadi 1
  cbr %one, ^a, ^b
^a:
  %v:i64 = loadi 10
  br ^j
^b:
  %v:i64 = copy %x
  br ^j
^j:
  %r:i64 = add %v, %v
  ret %r
}
)");
  Function &F = *M->Functions[0];
  EXPECT_TRUE(runPassStat<SCCPPass>(F, "changed"));
  // Branch folded.
  EXPECT_EQ(countOp(F, Opcode::Cbr), 0u);
  // The add folded to 20 despite the (unreachable) other arm.
  bool Found = false;
  for (const Instruction &I : F.block(3)->Insts)
    if (I.hasDst() && I.Op == Opcode::LoadI && I.IImm == 20)
      Found = true;
  EXPECT_TRUE(Found) << printFunction(F);
}

TEST(ConstProp, DoesNotFoldTrappingDivision) {
  auto M = parse(R"(
func @f() -> i64 {
^e:
  %a:i64 = loadi 1
  %z:i64 = loadi 0
  %d:i64 = div %a, %z
  ret %d
}
)");
  Function &F = *M->Functions[0];
  runPass(F, SCCPPass());
  EXPECT_EQ(countOp(F, Opcode::Div), 1u); // preserved; still traps at run time
}

TEST(ConstProp, LoopConstantConverges) {
  auto M = parse(R"(
func @f(%n:i64) -> i64 {
^e:
  %k:i64 = loadi 5
  %i:i64 = loadi 0
  br ^l
^l:
  %k:i64 = loadi 5
  %one:i64 = loadi 1
  %i:i64 = add %i, %one
  %c:i64 = cmplt %i, %n
  cbr %c, ^l, ^x
^x:
  %r:i64 = add %k, %k
  ret %r
}
)");
  Function &F = *M->Functions[0];
  runPass(F, SCCPPass());
  bool Folded = false;
  for (const Instruction &I : F.block(2)->Insts)
    if (I.Op == Opcode::LoadI && I.IImm == 10)
      Folded = true;
  EXPECT_TRUE(Folded) << printFunction(F);
}

// --- Peephole ---------------------------------------------------------------

TEST(Peephole, AlgebraicIdentities) {
  auto M = parse(R"(
func @f(%x:i64) -> i64 {
^e:
  %z:i64 = loadi 0
  %a:i64 = add %x, %z
  %o:i64 = loadi 1
  %b:i64 = mul %a, %o
  %c:i64 = sub %b, %z
  %d:i64 = xor %c, %z
  ret %d
}
)");
  Function &F = *M->Functions[0];
  EXPECT_TRUE(runPassStat<PeepholePass>(F, "changed"));
  // All four ops reduce to copies of %x; no arithmetic remains.
  EXPECT_EQ(countOp(F, Opcode::Add), 0u);
  EXPECT_EQ(countOp(F, Opcode::Mul), 0u);
  EXPECT_EQ(countOp(F, Opcode::Sub), 0u);
  EXPECT_EQ(countOp(F, Opcode::Xor), 0u);
  MemoryImage Mem(0);
  EXPECT_EQ(interpret(F, {RtValue::ofI(99)}, Mem).ReturnValue.I, 99);
}

TEST(Peephole, ReconstructsSubFromAddNeg) {
  // The pass the paper relies on after negation normalization.
  auto M = parse(R"(
func @f(%x:i64, %y:i64) -> i64 {
^e:
  %n:i64 = neg %y
  %r:i64 = add %x, %n
  ret %r
}
)");
  Function &F = *M->Functions[0];
  EXPECT_TRUE(runPassStat<PeepholePass>(F, "changed"));
  EXPECT_EQ(countOp(F, Opcode::Sub), 1u);
  MemoryImage Mem(0);
  EXPECT_EQ(interpret(F, {RtValue::ofI(10), RtValue::ofI(3)}, Mem)
                .ReturnValue.I,
            7);
}

TEST(Peephole, NoUnsafeForwardingAcrossRedefinition) {
  // n = neg y; y redefined; add x, n must NOT become sub x, y.
  auto M = parse(R"(
func @f(%x:i64, %y:i64) -> i64 {
^e:
  %n:i64 = neg %y
  %hundred:i64 = loadi 100
  %y:i64 = copy %hundred
  %r:i64 = add %x, %n
  ret %r
}
)");
  Function &F = *M->Functions[0];
  runPass(F, PeepholePass());
  MemoryImage Mem(0);
  EXPECT_EQ(interpret(F, {RtValue::ofI(10), RtValue::ofI(3)}, Mem)
                .ReturnValue.I,
            7);
}

TEST(Peephole, StrengthReducesPowerOfTwoMultiply) {
  auto M = parse(R"(
func @f(%x:i64) -> i64 {
^e:
  %c:i64 = loadi 8
  %r:i64 = mul %x, %c
  ret %r
}
)");
  Function &F = *M->Functions[0];
  PeepholeOptions PO;
  PO.StrengthReduceMul = true;
  runPass(F, PeepholePass(PO));
  EXPECT_EQ(countOp(F, Opcode::Mul), 0u);
  EXPECT_EQ(countOp(F, Opcode::Shl), 1u);
  MemoryImage Mem(0);
  EXPECT_EQ(interpret(F, {RtValue::ofI(5)}, Mem).ReturnValue.I, 40);

  // And the option can disable it (§5.2 ordering concerns).
  auto M2 = parse(R"(
func @g(%x:i64) -> i64 {
^e:
  %c:i64 = loadi 8
  %r:i64 = mul %x, %c
  ret %r
}
)");
  PeepholeOptions NoSR;
  NoSR.StrengthReduceMul = false;
  runPass(*M2->Functions[0], PeepholePass(NoSR));
  EXPECT_EQ(countOp(*M2->Functions[0], Opcode::Mul), 1u);
}

TEST(Peephole, FloatIdentitiesAreBitExactOnly) {
  // x + 0.0 must NOT fold (x = -0.0 would change); x * 1.0 must fold.
  auto M = parse(R"(
func @f(%x:f64) -> f64 {
^e:
  %z:f64 = loadf 0.0
  %a:f64 = add %x, %z
  %o:f64 = loadf 1.0
  %b:f64 = mul %a, %o
  ret %b
}
)");
  Function &F = *M->Functions[0];
  runPass(F, PeepholePass());
  EXPECT_EQ(countOp(F, Opcode::Add), 1u); // kept
  EXPECT_EQ(countOp(F, Opcode::Mul), 0u); // folded
  MemoryImage Mem(0);
  ExecResult R = interpret(F, {RtValue::ofF(-0.0)}, Mem);
  EXPECT_EQ(R.ReturnValue.F, 0.0);
  EXPECT_FALSE(std::signbit(R.ReturnValue.F)); // -0.0 + 0.0 == +0.0
}

// --- DCE ---------------------------------------------------------------------

TEST(DCE, RemovesDeadChains) {
  auto M = parse(R"(
func @f(%x:i64) -> i64 {
^e:
  %a:i64 = loadi 1
  %b:i64 = add %a, %x
  %c:i64 = mul %b, %b
  %r:i64 = add %x, %x
  ret %r
}
)");
  Function &F = *M->Functions[0];
  EXPECT_TRUE(runPassStat<DCEPass>(F, "changed"));
  EXPECT_EQ(countInsts(F), 2u); // the live add and the ret
}

TEST(DCE, KeepsSideEffects) {
  auto M = parse(R"(
func @f(%a:i64, %v:f64) {
^e:
  %dead:f64 = add %v, %v
  store %v -> %a
  ret
}
)");
  Function &F = *M->Functions[0];
  runPass(F, DCEPass());
  EXPECT_EQ(countOp(F, Opcode::Store), 1u);
  EXPECT_EQ(countOp(F, Opcode::Add), 0u);
}

TEST(DCE, DeadAcrossLoop) {
  // A value computed in a loop and never observed must vanish entirely.
  auto M = parse(R"(
func @f(%n:i64) -> i64 {
^e:
  %z:i64 = loadi 0
  %s:i64 = copy %z
  %i:i64 = copy %z
  br ^l
^l:
  %s:i64 = add %s, %i
  %one:i64 = loadi 1
  %i:i64 = add %i, %one
  %c:i64 = cmplt %i, %n
  cbr %c, ^l, ^x
^x:
  %r:i64 = loadi 42
  ret %r
}
)");
  Function &F = *M->Functions[0];
  runPass(F, DCEPass());
  // The s accumulation is dead; the induction variable is still needed.
  bool HasS = false;
  for (const Instruction &I : F.block(1)->Insts)
    if (I.Op == Opcode::Add && I.Dst == I.Operands[0] &&
        I.Operands[1] != I.Operands[0])
      HasS = countOp(F, Opcode::Add) > 1;
  EXPECT_EQ(countOp(F, Opcode::Add), 1u) << printFunction(F);
  (void)HasS;
}

// --- Coalescing ---------------------------------------------------------------

TEST(Coalesce, MergesNonInterferingCopy) {
  auto M = parse(R"(
func @f(%x:i64) -> i64 {
^e:
  %t:i64 = add %x, %x
  %u:i64 = copy %t
  %r:i64 = add %u, %u
  ret %r
}
)");
  Function &F = *M->Functions[0];
  EXPECT_EQ(runPassStat<CopyCoalescingPass>(F, "copies_removed"), 1u);
  EXPECT_EQ(countOp(F, Opcode::Copy), 0u);
  MemoryImage Mem(0);
  EXPECT_EQ(interpret(F, {RtValue::ofI(3)}, Mem).ReturnValue.I, 12);
}

TEST(Coalesce, KeepsInterferingCopy) {
  // u <- t, then both used: merging would lose t's value... here t is
  // redefined while u lives, so they interfere.
  auto M = parse(R"(
func @f(%x:i64) -> i64 {
^e:
  %t:i64 = add %x, %x
  %u:i64 = copy %t
  %t:i64 = add %t, %u
  %r:i64 = add %t, %u
  ret %r
}
)");
  Function &F = *M->Functions[0];
  runPass(F, CopyCoalescingPass());
  MemoryImage Mem(0);
  // t=6,u=6,t=12,r=18
  EXPECT_EQ(interpret(F, {RtValue::ofI(3)}, Mem).ReturnValue.I, 18);
}

TEST(Coalesce, ParametersKeepTheirRegisters) {
  auto M = parse(R"(
func @f(%x:i64) -> i64 {
^e:
  %u:i64 = copy %x
  %r:i64 = add %u, %u
  ret %r
}
)");
  Function &F = *M->Functions[0];
  Reg P = F.params()[0];
  runPass(F, CopyCoalescingPass());
  EXPECT_EQ(F.params()[0], P);
  MemoryImage Mem(0);
  EXPECT_EQ(interpret(F, {RtValue::ofI(4)}, Mem).ReturnValue.I, 8);
}

// --- SimplifyCFG ---------------------------------------------------------------

TEST(SimplifyCFG, RemovesUnreachable) {
  auto M = parse(R"(
func @f() -> i64 {
^e:
  %r:i64 = loadi 1
  ret %r
^dead:
  %x:i64 = loadi 2
  ret %x
}
)");
  Function &F = *M->Functions[0];
  EXPECT_TRUE(runPassStat<SimplifyCFGPass>(F, "changed"));
  unsigned Blocks = 0;
  F.forEachBlock([&](BasicBlock &) { ++Blocks; });
  EXPECT_EQ(Blocks, 1u);
}

TEST(SimplifyCFG, ThreadsEmptyForwardingBlocks) {
  auto M = parse(R"(
func @f(%p:i64) -> i64 {
^e:
  cbr %p, ^fwd, ^b
^fwd:
  br ^t
^b:
  br ^t
^t:
  %r:i64 = loadi 3
  ret %r
}
)");
  Function &F = *M->Functions[0];
  EXPECT_TRUE(runPassStat<SimplifyCFGPass>(F, "changed"));
  MemoryImage Mem(0);
  EXPECT_EQ(interpret(F, {RtValue::ofI(1)}, Mem).ReturnValue.I, 3);
  unsigned Blocks = 0;
  F.forEachBlock([&](BasicBlock &) { ++Blocks; });
  EXPECT_LE(Blocks, 2u);
}

TEST(SimplifyCFG, MergesStraightLine) {
  auto M = parse(R"(
func @f() -> i64 {
^a:
  %x:i64 = loadi 1
  br ^b
^b:
  %y:i64 = loadi 2
  br ^c
^c:
  %r:i64 = add %x, %y
  ret %r
}
)");
  Function &F = *M->Functions[0];
  EXPECT_TRUE(runPassStat<SimplifyCFGPass>(F, "changed"));
  unsigned Blocks = 0;
  F.forEachBlock([&](BasicBlock &) { ++Blocks; });
  EXPECT_EQ(Blocks, 1u);
  EXPECT_EQ(countOp(F, Opcode::Br), 0u);
  MemoryImage Mem(0);
  EXPECT_EQ(interpret(F, {}, Mem).ReturnValue.I, 3);
}

TEST(SimplifyCFG, FoldsConstantBranch) {
  auto M = parse(R"(
func @f() -> i64 {
^e:
  %one:i64 = loadi 1
  cbr %one, ^a, ^b
^a:
  %x:i64 = loadi 10
  ret %x
^b:
  %y:i64 = loadi 20
  ret %y
}
)");
  Function &F = *M->Functions[0];
  EXPECT_TRUE(runPassStat<SimplifyCFGPass>(F, "changed"));
  EXPECT_EQ(countOp(F, Opcode::Cbr), 0u);
  MemoryImage Mem(0);
  EXPECT_EQ(interpret(F, {}, Mem).ReturnValue.I, 10);
}

TEST(SimplifyCFG, CbrSameTargetsBecomesBr) {
  auto M = parse(R"(
func @f(%p:i64) -> i64 {
^e:
  cbr %p, ^t, ^t
^t:
  %r:i64 = loadi 5
  ret %r
}
)");
  Function &F = *M->Functions[0];
  EXPECT_TRUE(runPassStat<SimplifyCFGPass>(F, "changed"));
  EXPECT_EQ(countOp(F, Opcode::Cbr), 0u);
}

} // namespace
