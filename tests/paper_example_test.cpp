//===- tests/paper_example_test.cpp - Figures 2-10 as invariants ----------===//
///
/// The running example of the paper (FUNCTION FOO, Figure 2) walked phase
/// by phase, asserting the properties each figure demonstrates.
///
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"
#include "frontend/Lower.h"
#include "gvn/ValueNumbering.h"
#include "interp/Interpreter.h"
#include "ir/ExprKey.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "opt/CopyCoalescing.h"
#include "opt/DeadCodeElim.h"
#include "opt/SimplifyCFG.h"
#include "pipeline/Pipeline.h"
#include "pre/PRE.h"
#include "reassoc/ForwardProp.h"
#include "reassoc/Ranks.h"
#include "reassoc/Reassociate.h"
#include "ssa/SSA.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

using namespace epre;
using epre::test::runPass;
using epre::test::runPassStat;

namespace {

const char *FooSource = R"(
function foo(y, z)
  s = 0
  x = y + z
  do i = x, 100
    s = i + s + x
  end do
  return s
end
)";

double runFoo(Function &F, uint64_t *Ops = nullptr) {
  MemoryImage Mem(0);
  ExecResult R =
      interpret(F, {RtValue::ofF(1.0), RtValue::ofF(2.0)}, Mem);
  EXPECT_TRUE(R.ok()) << R.TrapReason;
  if (Ops)
    *Ops = R.DynOps;
  return R.ReturnValue.F;
}

TEST(PaperExample, PhaseByPhase) {
  LowerResult LR = compileMiniFortran(FooSource, NamingMode::Naive);
  ASSERT_TRUE(LR.ok()) << LR.Error;
  Function &F = *LR.M->find("foo");

  // Figure 3: the naive translation. Reference semantics.
  uint64_t OpsNaive;
  double Expected = runFoo(F, &OpsNaive);
  EXPECT_EQ(Expected, 5341.0);

  // Figure 4: pruned SSA, copies folded into the phis.
  runPass(F, SSABuildPass());
  ASSERT_TRUE(verifyFunction(F, SSAMode::SSA).empty()) << printFunction(F);
  unsigned Phis = 0, Copies = 0;
  F.forEachBlock([&](const BasicBlock &B) {
    for (const Instruction &I : B.Insts) {
      Phis += I.isPhi();
      Copies += I.isCopy();
    }
  });
  // The loop carries s and i; the exit merges s. "Minimal SSA would have
  // required many more phi-nodes."
  EXPECT_EQ(Phis, 3u);
  EXPECT_EQ(Copies, 0u); // folded
  EXPECT_EQ(runFoo(F), Expected);

  // Ranks: "loop-invariant expressions are of lower rank than
  // loop-variant expressions".
  CFG G = CFG::compute(F);
  RankMap Ranks = RankMap::compute(F, G);
  std::map<unsigned, unsigned> RankHistogram;
  unsigned LoopBlock = 0;
  F.forEachBlock([&](const BasicBlock &B) {
    if (B.firstNonPhi() > 0)
      for (BlockId S : B.successors())
        if (S == B.id())
          LoopBlock = B.id();
  });
  unsigned EntryRank = Ranks.blockRank(0);
  F.forEachBlock([&](const BasicBlock &B) {
    for (const Instruction &I : B.Insts) {
      if (!I.hasDst())
        continue;
      ++RankHistogram[Ranks.rank(I.Dst)];
      if (I.Op == Opcode::LoadI || I.Op == Opcode::LoadF) {
        EXPECT_EQ(Ranks.rank(I.Dst), 0u);
      }
    }
  });
  EXPECT_GT(RankHistogram[0], 0u);          // constants exist
  EXPECT_GT(RankHistogram[EntryRank], 0u);  // invariants exist
  // x = y + z is invariant: its rank equals the entry block's.
  bool FoundInvariantAdd = false;
  F.forEachBlock([&](const BasicBlock &B) {
    for (const Instruction &I : B.Insts)
      if (I.Op == Opcode::Add && I.Ty == Type::F64 &&
          Ranks.rank(I.Dst) == EntryRank)
        FoundInvariantAdd = true;
  });
  EXPECT_TRUE(FoundInvariantAdd);

  // Figures 5-6: forward propagation. No phis remain; every expression
  // use has a local definition (§5.1); behaviour unchanged.
  ForwardPropStats FP = runPass(F, ForwardPropPass(Ranks)).lastStats();
  ASSERT_TRUE(verifyFunction(F, SSAMode::NoSSA).empty())
      << printFunction(F);
  EXPECT_EQ(FP.PhisRemoved, 3u);
  EXPECT_GT(FP.OpsAfter, FP.OpsBefore); // Table 2: code grows
  EXPECT_EQ(runFoo(F), Expected);

  // Figure 7: reassociation sorts low-ranked operands together.
  ReassociateOptions RO;
  runPass(F, NegNormPass(Ranks, RO));
  runPass(F, ReassociatePass(Ranks, RO));
  ASSERT_TRUE(verifyFunction(F, SSAMode::NoSSA).empty());
  EXPECT_EQ(runFoo(F), Expected);

  // Figure 8: value numbering — lexically identical expressions now share
  // names ("Each lexically-identical expression will have the same name").
  runPass(F, GVNPass());
  ASSERT_TRUE(verifyFunction(F, SSAMode::NoSSA).empty());
  EXPECT_EQ(runFoo(F), Expected);
  std::map<ExprKey, std::set<Reg>, bool (*)(const ExprKey &, const ExprKey &)>
      NamesPerExpr([](const ExprKey &A, const ExprKey &B) {
        return A.hash() < B.hash();
      });
  F.forEachBlock([&](const BasicBlock &B) {
    for (const Instruction &I : B.Insts)
      if (I.hasDst() && I.isExpression())
        NamesPerExpr[makeExprKey(I)].insert(I.Dst);
  });
  for (const auto &[K, Names] : NamesPerExpr)
    EXPECT_EQ(Names.size(), 1u) << "expression with multiple names";

  // Figure 9: PRE hoists the invariants and deletes redundancies.
  unsigned Deleted = 0;
  for (int I = 0; I < 8; ++I) {
    PREStats S = runPass(F, PREPass()).lastStats();
    Deleted += S.Deleted;
    if (!S.Inserted && !S.Deleted)
      break;
  }
  EXPECT_GT(Deleted, 0u);
  ASSERT_TRUE(verifyFunction(F, SSAMode::NoSSA).empty());
  EXPECT_EQ(runFoo(F), Expected);

  // Figure 10: coalescing removes the copies.
  runPass(F, DCEPass());
  unsigned Coalesced =
      unsigned(runPassStat<CopyCoalescingPass>(F, "copies_removed"));
  EXPECT_GT(Coalesced, 0u);
  runPass(F, DCEPass());
  runPass(F, SimplifyCFGPass());
  ASSERT_TRUE(verifyFunction(F, SSAMode::NoSSA).empty());

  // The final claim: "reduced the length of the loop by 1 operation
  // without increasing the length of any path through the routine."
  uint64_t OpsFinal;
  EXPECT_EQ(runFoo(F, &OpsFinal), Expected);
  EXPECT_LT(OpsFinal, OpsNaive);
  (void)LoopBlock;
}

TEST(PaperExample, ZeroTripAndNegativePaths) {
  // The transformations must also hold on the zero-trip path (x > 100).
  for (auto [Y, Z] : {std::pair{200.0, 10.0}, {-5.0, 2.0}, {98.0, 1.0}}) {
    LowerResult LR = compileMiniFortran(FooSource, NamingMode::Naive);
    ASSERT_TRUE(LR.ok());
    Function &F = *LR.M->find("foo");
    MemoryImage Mem(0);
    double Before = interpret(F, {RtValue::ofF(Y), RtValue::ofF(Z)}, Mem)
                        .ReturnValue.F;
    PipelineOptions PO;
    PO.Level = OptLevel::Distribution;
    optimizeFunction(F, PO);
    ExecResult R = interpret(F, {RtValue::ofF(Y), RtValue::ofF(Z)}, Mem);
    ASSERT_TRUE(R.ok());
    EXPECT_NEAR(R.ReturnValue.F, Before, 1e-9 * (1 + std::fabs(Before)))
        << "y=" << Y << " z=" << Z;
  }
}

} // namespace
